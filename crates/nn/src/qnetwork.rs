//! The native fixed-point backend: quantized layers, kernels and networks
//! that execute entirely on raw Q-format words.
//!
//! The `f32` backend *simulates* a fixed-point datapath by requantizing
//! activations after every layer; this module *is* the fixed-point datapath.
//! [`QNetwork::quantize`] compiles a trained [`Network`] into per-layer raw
//! two's-complement words, and the quantized kernels run convolution and
//! fully-connected sweeps with a widened integer accumulator followed by one
//! saturating, round-to-nearest requantize per output element — exactly the
//! arithmetic of an integer MAC array. The live buffers a fault campaign
//! corrupts (weights, inputs, activations) therefore exist as Q-format words
//! at inference time, and corrupting them is a single integer operation.

use std::fmt;

use navft_qformat::{bitstats::BitStats, QFormat, QValue};

use crate::engine::SweepEvent;
use crate::layer::{window_output_size, Conv2d, Linear, MaxPool2d};
use crate::{Layer, LayerKind, Network, QTensor, Scratch, Tensor};

/// Activation storage for the native fixed-point backend: a [`Scratch`] over
/// raw Q-format words.
pub type QScratch = Scratch<i32>;

/// Observer/mutator hooks invoked during a native fixed-point forward pass.
///
/// The quantized counterpart of [`ForwardHooks`](crate::ForwardHooks): the
/// same call sequence and
/// batch-row semantics, but over the live raw-word buffers, so fault
/// injection and instrumentation touch the stored representation directly.
pub trait QForwardHooks {
    /// Called on the input word buffer before the first layer.
    fn on_input(&mut self, words: &mut [i32]) {
        let _ = words;
    }

    /// Called on the word buffer produced by layer `layer_index`.
    fn on_activation(&mut self, layer_index: usize, kind: LayerKind, words: &mut [i32]) {
        let _ = (layer_index, kind, words);
    }

    /// Called on batch row `batch_row` of the input before the first layer
    /// of a batched pass. Defaults to [`QForwardHooks::on_input`].
    fn on_batch_input(&mut self, batch_row: usize, words: &mut [i32]) {
        let _ = batch_row;
        self.on_input(words);
    }

    /// Called on batch row `batch_row` of the word buffer produced by layer
    /// `layer_index` during a batched pass. Defaults to
    /// [`QForwardHooks::on_activation`].
    fn on_batch_activation(
        &mut self,
        batch_row: usize,
        layer_index: usize,
        kind: LayerKind,
        words: &mut [i32],
    ) {
        let _ = batch_row;
        self.on_activation(layer_index, kind, words);
    }
}

/// [`NoHooks`](crate::NoHooks) serves both backends: the fault-free native
/// pass.
impl QForwardHooks for crate::NoHooks {}

/// A 2-D convolution over raw Q-format words (valid padding).
///
/// Weights and biases are stored as raw two's-complement words in the
/// network's format; the kernel accumulates word products in a widened `i64`
/// accumulator (products carry `2 × frac_bits` fractional bits) and performs
/// one saturating requantize per output element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QConv2d {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Filter weights as raw words, laid out `[out, in, k, k]` row-major.
    pub weights: Vec<i32>,
    /// Per-output-channel biases as raw words.
    pub bias: Vec<i32>,
}

impl QConv2d {
    /// Quantizes an `f32` convolution's parameters into `format`.
    pub fn quantize(conv: &Conv2d, format: QFormat) -> QConv2d {
        QConv2d {
            in_channels: conv.in_channels,
            out_channels: conv.out_channels,
            kernel: conv.kernel,
            stride: conv.stride,
            weights: quantize_raw(&conv.weights, format),
            bias: quantize_raw(&conv.bias, format),
        }
    }

    /// Output spatial size for an input of extent `input`.
    pub fn output_size(&self, input: usize) -> usize {
        window_output_size(input, self.kernel, self.stride)
    }

    /// The `[C, H, W]` output shape for a `[C, H, W]` input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is not 3-dimensional with `in_channels`
    /// channels or is smaller than the kernel.
    pub fn output_shape(&self, in_shape: &[usize]) -> [usize; 3] {
        assert_eq!(in_shape.len(), 3, "conv2d expects a [C, H, W] input");
        assert_eq!(in_shape[0], self.in_channels, "conv2d input channel mismatch");
        let (h, w) = (in_shape[1], in_shape[2]);
        assert!(h >= self.kernel && w >= self.kernel, "conv2d input smaller than kernel");
        [self.out_channels, self.output_size(h), self.output_size(w)]
    }

    /// Runs the convolution on a flat `[C, H, W]` raw-word buffer, writing
    /// every output word into the caller-provided `out` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are invalid or `out` has the wrong length.
    pub fn forward_into(&self, data: &[i32], in_shape: &[usize], out: &mut [i32], format: QFormat) {
        let [_, oh, ow] = self.output_shape(in_shape);
        let (h, w) = (in_shape[1], in_shape[2]);
        assert_eq!(data.len(), self.in_channels * h * w, "conv2d input buffer length mismatch");
        assert_eq!(out.len(), self.out_channels * oh * ow, "conv2d output buffer length mismatch");
        let k = self.kernel;
        let frac = u32::from(format.frac_bits());
        for oc in 0..self.out_channels {
            let w_base = oc * self.in_channels * k * k;
            let out_base = oc * oh * ow;
            let bias = i64::from(self.bias[oc]) << frac;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias;
                    let iy0 = oy * self.stride;
                    let ix0 = ox * self.stride;
                    for ic in 0..self.in_channels {
                        let in_base = ic * h * w;
                        let wk_base = w_base + ic * k * k;
                        for ky in 0..k {
                            let row = in_base + (iy0 + ky) * w + ix0;
                            let wrow = wk_base + ky * k;
                            for kx in 0..k {
                                acc +=
                                    i64::from(data[row + kx]) * i64::from(self.weights[wrow + kx]);
                            }
                        }
                    }
                    out[out_base + oy * ow + ox] = format.requantize_product_sum(acc);
                }
            }
        }
    }
}

/// A fully-connected layer `y = W x + b` over raw Q-format words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QLinear {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Weights as raw words, laid out `[out, in]` row-major.
    pub weights: Vec<i32>,
    /// Per-output biases as raw words.
    pub bias: Vec<i32>,
}

impl QLinear {
    /// Quantizes an `f32` linear layer's parameters into `format`.
    pub fn quantize(linear: &Linear, format: QFormat) -> QLinear {
        QLinear {
            in_features: linear.in_features,
            out_features: linear.out_features,
            weights: quantize_raw(&linear.weights, format),
            bias: quantize_raw(&linear.bias, format),
        }
    }

    /// Runs the layer on a flat raw-word buffer, writing every output word
    /// into the caller-provided `out` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the input length differs from `in_features` or `out` from
    /// `out_features`.
    pub fn forward_into(&self, x: &[i32], _in_shape: &[usize], out: &mut [i32], format: QFormat) {
        assert_eq!(x.len(), self.in_features, "linear input length mismatch");
        assert_eq!(out.len(), self.out_features, "linear output buffer length mismatch");
        let frac = u32::from(format.frac_bits());
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = i64::from(self.bias[o]) << frac;
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += i64::from(*w) * i64::from(*xi);
            }
            *out_v = format.requantize_product_sum(acc);
        }
    }
}

/// A layer of the native fixed-point backend.
///
/// Mirrors [`Layer`] shape-for-shape: parametric layers carry raw-word
/// parameters, pooling reuses the order-only [`MaxPool2d`], and ReLU/flatten
/// are in-place integer transforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QLayer {
    /// 2-D convolution over raw words.
    Conv2d(QConv2d),
    /// 2-D max pooling (raw-word comparison equals value comparison).
    MaxPool2d(MaxPool2d),
    /// Rectified linear unit: `max(raw, 0)`.
    Relu,
    /// Flatten to a vector.
    Flatten,
    /// Fully-connected layer over raw words.
    Linear(QLinear),
}

impl QLayer {
    /// The layer kind.
    pub fn kind(&self) -> LayerKind {
        match self {
            QLayer::Conv2d(_) => LayerKind::Conv2d,
            QLayer::MaxPool2d(_) => LayerKind::MaxPool2d,
            QLayer::Relu => LayerKind::Relu,
            QLayer::Flatten => LayerKind::Flatten,
            QLayer::Linear(_) => LayerKind::Linear,
        }
    }

    /// Writes the layer's output shape for `in_shape` into `out` (cleared
    /// first, so a reused `Vec` never allocates once warm).
    ///
    /// # Panics
    ///
    /// Panics if `in_shape` is not a valid input shape for this layer.
    pub fn output_shape(&self, in_shape: &[usize], out: &mut Vec<usize>) {
        out.clear();
        match self {
            QLayer::Conv2d(conv) => out.extend_from_slice(&conv.output_shape(in_shape)),
            QLayer::MaxPool2d(pool) => out.extend_from_slice(&pool.output_shape(in_shape)),
            QLayer::Relu => out.extend_from_slice(in_shape),
            QLayer::Flatten => out.push(in_shape.iter().product()),
            QLayer::Linear(linear) => {
                let len: usize = in_shape.iter().product();
                assert_eq!(len, linear.in_features, "linear input length mismatch");
                out.push(linear.out_features);
            }
        }
    }

    /// Runs the layer on a flat raw-word buffer, writing the output into the
    /// caller-provided `out` buffer. `Relu` and `Flatten` degrade to a copy
    /// here; the batched engine applies them in place instead.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are invalid or `out` has the wrong length.
    pub fn forward_into(&self, data: &[i32], in_shape: &[usize], out: &mut [i32], format: QFormat) {
        match self {
            QLayer::Conv2d(conv) => conv.forward_into(data, in_shape, out, format),
            QLayer::MaxPool2d(pool) => pool.forward_into(data, in_shape, out),
            QLayer::Relu | QLayer::Flatten => {
                out.copy_from_slice(data);
                if matches!(self, QLayer::Relu) {
                    QLayer::relu_in_place(out);
                }
            }
            QLayer::Linear(linear) => linear.forward_into(data, in_shape, out, format),
        }
    }

    /// Applies the ReLU non-linearity in place on raw words: negative raw
    /// values (negative dequantized values) become the zero word.
    pub fn relu_in_place(words: &mut [i32]) {
        for w in words.iter_mut() {
            *w = (*w).max(0);
        }
    }

    /// Whether the layer transforms words without moving them between
    /// buffers (see [`Layer::is_in_place`]).
    pub fn is_in_place(&self) -> bool {
        matches!(self, QLayer::Relu | QLayer::Flatten)
    }

    /// The layer's raw weight buffer, if it has parameters.
    pub fn weights_raw(&self) -> Option<&[i32]> {
        match self {
            QLayer::Conv2d(conv) => Some(&conv.weights),
            QLayer::Linear(linear) => Some(&linear.weights),
            _ => None,
        }
    }

    /// The layer's raw weight buffer, mutably — the live words weight-fault
    /// injection flips in place.
    pub fn weights_raw_mut(&mut self) -> Option<&mut Vec<i32>> {
        match self {
            QLayer::Conv2d(conv) => Some(&mut conv.weights),
            QLayer::Linear(linear) => Some(&mut linear.weights),
            _ => None,
        }
    }

    /// The layer's raw bias buffer, if it has parameters.
    pub fn biases_raw(&self) -> Option<&[i32]> {
        match self {
            QLayer::Conv2d(conv) => Some(&conv.bias),
            QLayer::Linear(linear) => Some(&linear.bias),
            _ => None,
        }
    }

    /// Whether the layer holds parameters.
    pub fn is_parametric(&self) -> bool {
        self.weights_raw().is_some()
    }
}

/// A feed-forward network executing natively in one [`QFormat`].
///
/// A `QNetwork` is the fixed-point compilation of a [`Network`]: same
/// topology, parameters snapped to the format and stored as raw
/// two's-complement words, and every forward pass — single-sample, scratch
/// and batched — runs in integer arithmetic end to end. Activations are raw
/// words too, so the paper's fault model corrupts the buffers that actually
/// exist at inference time.
///
/// # Examples
///
/// ```
/// use navft_nn::{mlp, QNetwork, QTensor, Tensor};
/// use navft_qformat::QFormat;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = mlp(&[4, 8, 2], &mut rng);
/// let qnet = QNetwork::quantize(&net, QFormat::Q4_11);
/// let input = QTensor::quantize(&Tensor::zeros(&[4]), QFormat::Q4_11);
/// let out = qnet.forward(&input);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QNetwork {
    layers: Vec<QLayer>,
    format: QFormat,
}

impl QNetwork {
    /// Compiles `network` into a native fixed-point network in `format`
    /// (post-training quantization of weights and biases).
    pub fn quantize(network: &Network, format: QFormat) -> QNetwork {
        let layers = network
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Conv2d(conv) => QLayer::Conv2d(QConv2d::quantize(conv, format)),
                Layer::MaxPool2d(pool) => QLayer::MaxPool2d(*pool),
                Layer::Relu => QLayer::Relu,
                Layer::Flatten => QLayer::Flatten,
                Layer::Linear(linear) => QLayer::Linear(QLinear::quantize(linear, format)),
            })
            .collect();
        QNetwork { layers, format }
    }

    /// Decompiles back into an `f32` [`Network`] whose parameters sit exactly
    /// on this format's grid and whose activation format is set — the float
    /// *simulation* of this network, used by the equivalence suite.
    pub fn dequantize(&self) -> Network {
        let resolution = self.format.resolution();
        let deq = |words: &[i32]| words.iter().map(|&w| w as f32 * resolution).collect();
        let layers = self
            .layers
            .iter()
            .map(|layer| match layer {
                QLayer::Conv2d(conv) => Layer::Conv2d(Conv2d {
                    in_channels: conv.in_channels,
                    out_channels: conv.out_channels,
                    kernel: conv.kernel,
                    stride: conv.stride,
                    weights: deq(&conv.weights),
                    bias: deq(&conv.bias),
                }),
                QLayer::MaxPool2d(pool) => Layer::MaxPool2d(*pool),
                QLayer::Relu => Layer::Relu,
                QLayer::Flatten => Layer::Flatten,
                QLayer::Linear(linear) => Layer::Linear(Linear {
                    in_features: linear.in_features,
                    out_features: linear.out_features,
                    weights: deq(&linear.weights),
                    bias: deq(&linear.bias),
                }),
            })
            .collect();
        Network::new(layers).with_activation_format(self.format)
    }

    /// The format every buffer of this network is stored in.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Indices of the layers that hold weights, in network order (matches
    /// [`Network::parametric_layers`] of the source network).
    pub fn parametric_layers(&self) -> Vec<usize> {
        self.layers.iter().enumerate().filter(|(_, l)| l.is_parametric()).map(|(i, _)| i).collect()
    }

    /// The raw weight buffer of layer `index`, if that layer has one.
    pub fn layer_weights_raw(&self, index: usize) -> Option<&[i32]> {
        self.layers.get(index).and_then(|l| l.weights_raw())
    }

    /// The raw weight buffer of layer `index`, mutably — the live words the
    /// fault layer corrupts in place.
    pub fn layer_weights_raw_mut(&mut self, index: usize) -> Option<&mut Vec<i32>> {
        self.layers.get_mut(index).and_then(|l| l.weights_raw_mut())
    }

    /// Total number of weight words across all layers.
    pub fn weight_count(&self) -> usize {
        self.layers.iter().filter_map(|l| l.weights_raw().map(<[i32]>::len)).sum()
    }

    /// The range of flat weight indices occupied by layer `index` when all
    /// weight buffers are viewed as one concatenated buffer (same spans as
    /// [`Network::weight_span`] of the source network).
    pub fn weight_span(&self, index: usize) -> std::ops::Range<usize> {
        let mut start = 0;
        for (i, layer) in self.layers.iter().enumerate() {
            let len = layer.weights_raw().map_or(0, <[i32]>::len);
            if i == index {
                return start..start + len;
            }
            start += len;
        }
        start..start
    }

    /// Applies `f` to every raw weight buffer, passing the layer index.
    pub fn for_each_weight_buffer<F: FnMut(usize, &mut Vec<i32>)>(&mut self, mut f: F) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if let Some(w) = layer.weights_raw_mut() {
                f(i, w);
            }
        }
    }

    /// The `(min, max)` dequantized value of each parametric layer's weights,
    /// keyed by layer index — the instrumentation the range-based anomaly
    /// detector derives for its quantized-domain scrub.
    pub fn weight_ranges(&self) -> Vec<(usize, f32, f32)> {
        let resolution = self.format.resolution();
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| {
                l.weights_raw().map(|w| {
                    let lo = w.iter().copied().min().unwrap_or(0);
                    let hi = w.iter().copied().max().unwrap_or(0);
                    (i, lo as f32 * resolution, hi as f32 * resolution)
                })
            })
            .collect()
    }

    /// Bit-population statistics over the network's parameter words and —
    /// when `calibration` inputs are given — every activation buffer (input
    /// included) produced by forwarding them. One call sweeps the whole
    /// fault surface, feeding the per-format zero/one-bit-ratio report of
    /// the data-type experiment.
    ///
    /// # Panics
    ///
    /// Panics if a calibration input's format differs from the network's.
    pub fn bit_stats(&self, calibration: &[QTensor], scratch: &mut QScratch) -> BitStats {
        struct StatsHook {
            stats: BitStats,
            format: QFormat,
        }
        impl QForwardHooks for StatsHook {
            fn on_input(&mut self, words: &mut [i32]) {
                self.stats.extend_raw(words.iter().copied(), self.format);
            }
            fn on_activation(&mut self, _i: usize, _k: LayerKind, words: &mut [i32]) {
                self.stats.extend_raw(words.iter().copied(), self.format);
            }
        }
        let mut hook = StatsHook { stats: BitStats::new(), format: self.format };
        for layer in &self.layers {
            if let Some(w) = layer.weights_raw() {
                hook.stats.extend_raw(w.iter().copied(), self.format);
            }
            if let Some(b) = layer.biases_raw() {
                hook.stats.extend_raw(b.iter().copied(), self.format);
            }
        }
        for input in calibration {
            let _ = self.forward_scratch(input, scratch, &mut hook);
        }
        hook.stats
    }

    /// Runs a native forward pass with no hooks.
    pub fn forward(&self, input: &QTensor) -> QTensor {
        self.forward_with(input, &mut crate::NoHooks)
    }

    /// Runs a native forward pass, invoking `hooks` on the input word buffer
    /// and on every layer's activation word buffer.
    ///
    /// # Panics
    ///
    /// Panics if the input's format differs from the network's.
    pub fn forward_with<H: QForwardHooks + ?Sized>(
        &self,
        input: &QTensor,
        hooks: &mut H,
    ) -> QTensor {
        assert_eq!(input.format(), self.format, "input format does not match network format");
        let mut shape = input.shape().to_vec();
        let mut next_shape = Vec::with_capacity(4);
        let mut current = input.words().to_vec();
        hooks.on_input(&mut current);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.output_shape(&shape, &mut next_shape);
            if layer.is_in_place() {
                if matches!(layer, QLayer::Relu) {
                    QLayer::relu_in_place(&mut current);
                }
            } else {
                let mut out = vec![0i32; next_shape.iter().product()];
                layer.forward_into(&current, &shape, &mut out, self.format);
                current = out;
            }
            std::mem::swap(&mut shape, &mut next_shape);
            hooks.on_activation(i, layer.kind(), &mut current);
        }
        QTensor::from_raw_vec(&shape, current, self.format)
    }

    /// Runs a batched native forward pass: all `inputs` advance through the
    /// network one layer sweep at a time, with raw-word activations staged in
    /// `scratch`'s preallocated slabs. Returns one output tensor per input.
    ///
    /// Batched and per-sample native passes are bit-identical: row `b` of
    /// the result equals `self.forward(&inputs[b])` exactly.
    pub fn forward_batch(&self, inputs: &[QTensor], scratch: &mut QScratch) -> Vec<QTensor> {
        if inputs.is_empty() {
            return Vec::new();
        }
        self.forward_batch_into(inputs, scratch, &mut crate::NoHooks);
        (0..scratch.rows())
            .map(|b| {
                QTensor::from_raw_vec(scratch.row_shape(), scratch.row(b).to_vec(), self.format)
            })
            .collect()
    }

    /// The zero-allocation core of the native batched engine: runs the pass
    /// and leaves the output words in `scratch`, readable via
    /// [`Scratch::row`] until the next pass. Steady-state calls perform no
    /// heap allocation at all ([`Scratch::grow_events`] stays flat once the
    /// slabs are warm).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, the inputs do not share one shape, or an
    /// input's format differs from the network's.
    pub fn forward_batch_into<H: QForwardHooks + ?Sized>(
        &self,
        inputs: &[QTensor],
        scratch: &mut QScratch,
        hooks: &mut H,
    ) {
        assert!(!inputs.is_empty(), "forward_batch needs at least one input");
        let input_shape = inputs[0].shape();
        for input in inputs {
            assert_eq!(input.shape(), input_shape, "all batch inputs must share one shape");
            assert_eq!(input.format(), self.format, "input format does not match network format");
        }
        let format = self.format;
        crate::engine::forward_batch_engine(
            self.layers.iter().map(|layer| QLayerSweep { layer, format }),
            input_shape,
            inputs.iter().map(QTensor::words),
            scratch,
            |event, row| match event {
                SweepEvent::Input { row: b } => hooks.on_batch_input(b, row),
                SweepEvent::Activation { row: b, layer, kind } => {
                    hooks.on_batch_activation(b, layer, kind, row)
                }
            },
        );
    }

    /// Runs a single-sample native pass through `scratch` without allocating
    /// the output tensor: the returned word slice borrows the scratch's
    /// front slab and stays valid until the next pass. This is the hot path
    /// for episode loops that only need an [`argmax`](crate::argmax) over
    /// the raw Q-values.
    pub fn forward_scratch<'s, H: QForwardHooks + ?Sized>(
        &self,
        input: &QTensor,
        scratch: &'s mut QScratch,
        hooks: &mut H,
    ) -> &'s [i32] {
        self.forward_batch_into(std::slice::from_ref(input), scratch, hooks);
        scratch.row(0)
    }
}

impl fmt::Display for QNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QNetwork[")?;
        for (i, layer) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}", layer.kind())?;
        }
        write!(f, "] ({} weights in {})", self.weight_count(), self.format)
    }
}

/// A [`QLayer`] paired with its network's format: the native backend's view
/// of a layer for the shared batched engine.
struct QLayerSweep<'a> {
    layer: &'a QLayer,
    format: QFormat,
}

impl crate::engine::SweepLayer<i32> for QLayerSweep<'_> {
    fn kind(&self) -> LayerKind {
        self.layer.kind()
    }

    fn output_shape(&self, in_shape: &[usize], out: &mut Vec<usize>) {
        self.layer.output_shape(in_shape, out);
    }

    fn is_in_place(&self) -> bool {
        self.layer.is_in_place()
    }

    fn apply_in_place(&self, values: &mut [i32]) {
        if matches!(self.layer, QLayer::Relu) {
            QLayer::relu_in_place(values);
        }
    }

    fn sweep(&self, data: &[i32], in_shape: &[usize], out: &mut [i32]) {
        self.layer.forward_into(data, in_shape, out, self.format);
    }
}

/// Bit-population statistics over an `f32` network's whole fault surface in
/// one call: every weight and bias buffer plus — when `calibration` inputs
/// are given — every activation buffer (input included) a forward pass
/// produces, all quantized into `format`.
///
/// This is the network-level [`BitStats`] sweep behind the zero/one
/// bit-ratio analysis of the data-type experiment; the native equivalent for
/// an already-quantized network is [`QNetwork::bit_stats`].
pub fn network_bit_stats(network: &Network, format: QFormat, calibration: &[Tensor]) -> BitStats {
    let qnet = QNetwork::quantize(network, format);
    let inputs: Vec<QTensor> = calibration.iter().map(|t| QTensor::quantize(t, format)).collect();
    let mut scratch = QScratch::new();
    qnet.bit_stats(&inputs, &mut scratch)
}

fn quantize_raw(values: &[f32], format: QFormat) -> Vec<i32> {
    values.iter().map(|&v| QValue::quantize(v, format).raw()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoHooks;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_qnet(seed: u64, format: QFormat) -> QNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        QNetwork::quantize(&crate::mlp(&[3, 8, 2], &mut rng), format)
    }

    #[test]
    fn quantize_preserves_topology_and_spans() {
        let mut rng = SmallRng::seed_from_u64(0);
        let net = crate::mlp(&[3, 8, 2], &mut rng);
        let qnet = QNetwork::quantize(&net, QFormat::Q4_11);
        assert_eq!(qnet.num_layers(), net.num_layers());
        assert_eq!(qnet.parametric_layers(), net.parametric_layers());
        assert_eq!(qnet.weight_count(), net.weight_count());
        for index in qnet.parametric_layers() {
            assert_eq!(qnet.weight_span(index), net.weight_span(index));
        }
        assert_eq!(qnet.format(), QFormat::Q4_11);
    }

    #[test]
    fn native_forward_matches_float_simulation_on_a_tiny_mlp() {
        let format = QFormat::Q3_4;
        let qnet = tiny_qnet(1, format);
        let reference = qnet.dequantize();
        let input = QTensor::quantize(&Tensor::from_vec(&[3], vec![0.5, -0.25, 1.0]), format);
        let native = qnet.forward(&input);
        let simulated = reference.forward(&input.dequantize());
        for (n, s) in native.dequantize().data().iter().zip(simulated.data().iter()) {
            assert!(
                (n - s).abs() <= format.resolution(),
                "native {n} vs simulated {s} diverge past one LSB"
            );
        }
    }

    #[test]
    fn batched_native_pass_is_bit_identical_to_serial() {
        let format = QFormat::Q4_11;
        let qnet = tiny_qnet(2, format);
        let inputs: Vec<QTensor> = (0..5)
            .map(|i| {
                QTensor::quantize(
                    &Tensor::from_vec(&[3], vec![0.3 * i as f32 - 0.5, 0.25, -0.1 * i as f32]),
                    format,
                )
            })
            .collect();
        let mut scratch = QScratch::new();
        let batched = qnet.forward_batch(&inputs, &mut scratch);
        for (input, out) in inputs.iter().zip(batched.iter()) {
            assert_eq!(out.words(), qnet.forward(input).words());
        }
    }

    #[test]
    fn native_batched_steady_state_does_not_grow_the_scratch() {
        let qnet = tiny_qnet(3, QFormat::Q3_4);
        let inputs = vec![QTensor::quantize(&Tensor::full(&[3], 0.5), QFormat::Q3_4); 4];
        let mut scratch = QScratch::new();
        qnet.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        let warm = scratch.grow_events();
        for _ in 0..20 {
            qnet.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        }
        assert_eq!(scratch.grow_events(), warm, "warm native passes must not allocate");
    }

    #[test]
    fn hooks_can_corrupt_live_words() {
        struct ZeroFirstActivation;
        impl QForwardHooks for ZeroFirstActivation {
            fn on_activation(&mut self, layer: usize, _k: LayerKind, words: &mut [i32]) {
                if layer == 0 {
                    words.iter_mut().for_each(|w| *w = 0);
                }
            }
        }
        let format = QFormat::Q3_4;
        let qnet = tiny_qnet(4, format);
        let input = QTensor::quantize(&Tensor::full(&[3], 1.0), format);
        let clean = qnet.forward(&input);
        let hooked = qnet.forward_with(&input, &mut ZeroFirstActivation);
        // Zeroing the first linear layer's output leaves only fc2's bias.
        let bias = qnet.layers()[2].biases_raw().expect("fc2 bias");
        assert_eq!(hooked.words(), bias);
        assert_ne!(clean.words(), hooked.words());
    }

    #[test]
    fn relu_in_place_zeroes_negative_words() {
        let mut words = vec![-3, 0, 5];
        QLayer::relu_in_place(&mut words);
        assert_eq!(words, vec![0, 0, 5]);
    }

    #[test]
    fn weight_ranges_are_dequantized_extrema() {
        let qnet = tiny_qnet(5, QFormat::Q3_4);
        for (layer, lo, hi) in qnet.weight_ranges() {
            let words = qnet.layer_weights_raw(layer).expect("weights");
            let min = *words.iter().min().expect("non-empty") as f32 * 0.0625;
            let max = *words.iter().max().expect("non-empty") as f32 * 0.0625;
            assert_eq!((lo, hi), (min, max));
        }
    }

    #[test]
    fn bit_stats_cover_parameters_and_activations() {
        let format = QFormat::Q3_4;
        let qnet = tiny_qnet(6, format);
        let mut scratch = QScratch::new();
        let weights_only = qnet.bit_stats(&[], &mut scratch);
        let param_words: usize = qnet.weight_count()
            + qnet.layers().iter().filter_map(|l| l.biases_raw().map(<[i32]>::len)).sum::<usize>();
        assert_eq!(weights_only.total_bits(), (param_words * 8) as u64);
        let input = QTensor::quantize(&Tensor::full(&[3], 0.5), format);
        let with_acts = qnet.bit_stats(std::slice::from_ref(&input), &mut scratch);
        // input (3) + linear (8) + relu (8) + linear (2) activation words.
        assert_eq!(with_acts.total_bits(), weights_only.total_bits() + 21 * 8);
    }

    #[test]
    fn network_bit_stats_matches_native_sweep() {
        let mut rng = SmallRng::seed_from_u64(7);
        let net = crate::mlp(&[3, 8, 2], &mut rng);
        let format = QFormat::Q4_11;
        let calibration = vec![Tensor::full(&[3], 0.25)];
        let via_f32 = network_bit_stats(&net, format, &calibration);
        let qnet = QNetwork::quantize(&net, format);
        let qcal: Vec<QTensor> = calibration.iter().map(|t| QTensor::quantize(t, format)).collect();
        let mut scratch = QScratch::new();
        assert_eq!(via_f32, qnet.bit_stats(&qcal, &mut scratch));
    }

    #[test]
    fn display_lists_layers_and_format() {
        let qnet = tiny_qnet(8, QFormat::Q3_4);
        let text = qnet.to_string();
        assert!(text.contains("linear"));
        assert!(text.contains("Q(1,3,4)"));
    }

    #[test]
    #[should_panic(expected = "format does not match")]
    fn forward_rejects_mismatched_input_format() {
        let qnet = tiny_qnet(9, QFormat::Q3_4);
        let input = QTensor::quantize(&Tensor::zeros(&[3]), QFormat::Q4_11);
        let _ = qnet.forward(&input);
    }
}

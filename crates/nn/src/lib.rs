//! A minimal neural-network library with fault-injectable buffers and two
//! numeric backends.
//!
//! Learning-based navigation policies run on accelerators that stage data in
//! input, weight (filter) and activation (output) buffers; the paper's fault
//! model corrupts exactly those buffers. This crate therefore provides a small
//! CNN/MLP stack whose buffers are all plainly exposed:
//!
//! * [`Tensor`] — dense `f32` storage with direct access to the flat buffer.
//! * [`Layer`] — convolution, max-pooling, ReLU, flatten and fully-connected
//!   layers ([`layer`] module).
//! * [`Network`] — an ordered layer stack with per-layer weight access,
//!   forward hooks over every activation buffer ([`ForwardHooks`]), optional
//!   fixed-point activation quantization, range instrumentation
//!   ([`RangeRecorder`]) and SGD training of the fully-connected tail
//!   ([`Network::backward_tail`]) used for transfer-learning fine-tuning.
//! * [`models`] — the Grid World MLP ([`mlp`]) and the paper's C3F2 drone
//!   policy topology ([`C3f2Config`], Fig. 6b).
//! * [`Scratch`] — a reusable, double-buffered activation arena behind the
//!   batched inference engine ([`Network::forward_batch`] /
//!   [`Network::forward_batch_into`] / [`Network::forward_scratch`]),
//!   generic over the element type so both backends share it.
//!
//! # Two numeric backends
//!
//! Inference runs on one of two element types, chosen per use case:
//!
//! * The **`f32` backend** ([`Network`]) trains (Q-learning, DQN,
//!   transfer-learning fine-tuning need float gradients) and can *simulate* a
//!   fixed-point datapath by snapping parameters to a [`QFormat`] grid
//!   ([`Network::quantize_params`]) and requantizing every activation buffer.
//! * The **native fixed-point backend** ([`QNetwork`], compiled from a
//!   trained network via [`Network::to_quantized`]) stores every buffer as
//!   raw two's-complement Q-format words ([`QTensor`], [`QScratch`]) and
//!   executes Conv2d/Linear sweeps with a widened integer accumulator and one
//!   saturating requantize per output element. The live words the paper's
//!   fault model corrupts exist at inference time, so bit flips and stuck-at
//!   faults are single integer operations — and it is the fast path on
//!   integer hardware. The data-type sensitivity experiments (Fig. 7e and the
//!   extended ablation) execute each format natively on this backend; an
//!   equivalence suite (`tests/integration_quantized_equivalence.rs`) pins it
//!   within one LSB of the `f32` simulation per layer and bit-deterministic
//!   across runs.
//!
//! [`QFormat`]: navft_qformat::QFormat
//!
//! # Batched, zero-allocation inference
//!
//! Fault-injection campaigns replay millions of forward passes, so the hot
//! path must not allocate. Every layer exposes a `forward_into` that writes
//! into a caller-provided buffer, and [`Network::forward_batch_into`]
//! evaluates B inputs per layer sweep against a [`Scratch`] whose two
//! activation slabs are reused across calls: once warm, a pass performs
//! **zero** heap allocations ([`Scratch::grow_events`] stays flat). Batched
//! and per-sample passes are bit-identical — row `b` of a batch equals
//! `forward(&inputs[b])` exactly, enforced by the equivalence suite in
//! `tests/integration_batched_equivalence.rs` and this crate's proptests.
//!
//! Hooks map onto batches per row: [`ForwardHooks::on_batch_input`] and
//! [`ForwardHooks::on_batch_activation`] receive `(batch_row, layer,
//! values)` in per-row program order and default to the single-sample
//! methods, so existing hooks (range recording, dynamic fault injection)
//! work unchanged; [`PerRowHooks`] gives each row its own stateful hook,
//! reproducing per-episode fault injection bit-exactly on the batched path.
//!
//! # Examples
//!
//! ```
//! use navft_nn::{C3f2Config, Tensor};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let config = C3f2Config::scaled();
//! let policy = config.build(&mut rng);
//! let frame = Tensor::zeros(&config.input_shape());
//! let q_values = policy.forward(&frame);
//! assert_eq!(q_values.len(), config.actions);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod models;

mod engine;
mod network;
mod qnetwork;
mod qtensor;
mod scratch;
mod tensor;

pub use layer::{Layer, LayerKind};
pub use models::{c3f2, c3f2_scaled, mlp, parametric_layer_names, C3f2Config};
pub use network::{ForwardHooks, ForwardTrace, Network, NoHooks, PerRowHooks, RangeRecorder};
pub use qnetwork::{
    network_bit_stats, QConv2d, QForwardHooks, QLayer, QLinear, QNetwork, QScratch,
};
pub use qtensor::QTensor;
pub use scratch::Scratch;
pub use tensor::{argmax, Tensor};

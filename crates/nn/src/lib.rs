//! A minimal neural-network library with fault-injectable buffers and one
//! generic inference core instantiated for three numeric backends.
//!
//! Learning-based navigation policies run on accelerators that stage data in
//! input, weight (filter) and activation (output) buffers; the paper's fault
//! model corrupts exactly those buffers. This crate therefore provides a small
//! CNN/MLP stack whose buffers are all plainly exposed:
//!
//! * [`Tensor`] — dense `f32` storage with direct access to the flat buffer.
//! * [`Layer`] — convolution, max-pooling, ReLU, flatten and fully-connected
//!   layers ([`layer`] module).
//! * [`Network`] — an ordered layer stack with per-layer weight access,
//!   forward hooks over every activation buffer ([`ForwardHooks`]), optional
//!   fixed-point activation quantization, range instrumentation
//!   ([`RangeRecorder`]) and SGD training of the fully-connected tail
//!   ([`Network::backward_tail`]) used for transfer-learning fine-tuning.
//! * [`models`] — the Grid World MLP ([`mlp`]) and the paper's C3F2 drone
//!   policy topology ([`C3f2Config`], Fig. 6b).
//! * [`Scratch`] — a reusable, double-buffered activation arena behind the
//!   batched inference engine ([`Network::forward_batch`] /
//!   [`Network::forward_batch_into`] / [`Network::forward_scratch`]),
//!   generic over the element type so every backend shares it.
//!
//! # One generic core, three numeric backends
//!
//! The crate's central abstraction is the [`Element`] trait: everything that
//! distinguishes the numeric backends — the widened MAC accumulator, how a
//! bias seeds it, the per-output requantize, what ReLU means, and the
//! metadata networks and tensors carry — lives behind it. The tensor, layer
//! and network types are *aliases of shared generic types*:
//!
//! | generic | `f32` backend | native fixed-point | `i8` affine |
//! |---|---|---|---|
//! | [`TensorBase`]`<E>` | [`Tensor`] | [`QTensor`] | [`I8Tensor`] |
//! | [`layer::Conv2dBase`]`<E>` | [`layer::Conv2d`] | [`QConv2d`] | [`I8Conv2d`] |
//! | [`layer::LinearBase`]`<E>` | [`layer::Linear`] | [`QLinear`] | [`I8Linear`] |
//! | [`LayerBase`]`<E>` | [`Layer`] | [`QLayer`] | [`I8Layer`] |
//! | [`NetworkBase`]`<E>` | [`Network`] | [`QNetwork`] | [`I8Network`] |
//!
//! There is exactly **one** convolution kernel, one fully-connected kernel,
//! one pooling kernel, one argmax and one batched engine in the crate; the
//! backends cannot drift because they are the same code. The hook traits
//! ([`ForwardHooks`] over `f32` values, [`QForwardHooks`] over live raw
//! words) feed the generic paths through the [`HooksFor`] bridge, so hooks
//! written against either trait run unchanged on every forward path.
//!
//! Per backend:
//!
//! * The **`f32` backend** ([`Network`]) trains (Q-learning, DQN,
//!   transfer-learning fine-tuning need float gradients) and can *simulate* a
//!   fixed-point datapath by snapping parameters to a [`QFormat`] grid
//!   ([`Network::quantize_params`]) and requantizing every activation buffer.
//! * The **native fixed-point backend** ([`QNetwork`], compiled from a
//!   trained network via [`Network::to_quantized`]) stores every buffer as
//!   raw two's-complement Q-format words ([`QTensor`], [`QScratch`]) and
//!   executes Conv2d/Linear sweeps with a widened integer accumulator and one
//!   saturating requantize per output element. The live words the paper's
//!   fault model corrupts exist at inference time, so bit flips and stuck-at
//!   faults are single integer operations — and it is the fast path on
//!   integer hardware. The data-type sensitivity experiments (Fig. 7e and the
//!   extended ablation) execute each format natively on this backend; an
//!   equivalence suite (`tests/integration_quantized_equivalence.rs`) pins it
//!   within one LSB of the `f32` simulation per layer and bit-deterministic
//!   across runs.
//! * The **`i8` per-tensor affine backend** ([`I8Network`], compiled from a
//!   trained network via [`I8Network::quantize`]) stores every buffer as
//!   symmetric `value = word · scale` bytes ([`I8Affine`], one scale per
//!   network), accumulates byte products exactly in a widened `i32` and
//!   performs one rounding, saturating requantize per output element — the
//!   serving-style Int8 scheme of inference runtimes. Its live bytes are
//!   faultable exactly like raw Q-format words (`FaultMap::corrupt_raw` /
//!   `corrupt_span` flip bits of the stored `i8`s), and the data-type sweeps
//!   run it alongside the Q-formats.
//!
//! Adding a **further backend** is one `impl Element for NewType` plus an
//! optional set of aliases: the layers, the engine, the GEMM path, fault
//! injection (`navft-fault` corrupts any storage word) and the `navft-rl`
//! evaluators are already generic — the `i8` backend is exactly that recipe,
//! cashed in.
//!
//! [`QFormat`]: navft_qformat::QFormat
//!
//! # Batched, zero-allocation, blocked-GEMM inference
//!
//! Fault-injection campaigns replay millions of forward passes, so the hot
//! path must not allocate. Every layer exposes a buffer-to-buffer kernel,
//! and [`Network::forward_batch_into`] evaluates B inputs per layer sweep
//! against a [`Scratch`] whose activation slabs are reused across calls:
//! once warm, a pass performs **zero** heap allocations
//! ([`Scratch::grow_events`] stays flat). Convolution and linear sweeps run
//! a cache-blocked im2row GEMM (module `gemm`): the whole batch becomes one
//! `[M, K] × [N, K]` matrix sweep with `MR × NR` register tiles, each
//! output element still accumulating in the naive kernel's reduction order —
//! so batched, GEMM-accelerated passes stay **bit-identical** to per-sample
//! naive passes on every backend (enforced by the equivalence suites and the
//! crate's proptests; [`Network::forward_batch_naive_into`] keeps the
//! reference path callable for comparison and benchmarking).
//!
//! Two further accelerations sit behind the same contract:
//!
//! * **Runtime-dispatched SIMD microkernels** (module [`simd`]): every GEMM
//!   sweep is first offered to an explicit `std::arch` kernel — AVX2 or the
//!   x86-64 SSE2 baseline, selected per CPU at runtime — and falls back to
//!   the portable scalar register tiles elsewhere. The kernels reproduce the
//!   scalar accumulation chains bit for bit (`f32` vectorizes across output
//!   columns with explicit multiply + add, never FMA; the integer backends
//!   reduce across `k`, which is exact), and
//!   [`EngineConfig::with_force_scalar`] pins the scalar path for tests and
//!   baselines ([`simd_kernel_name`] reports the active tier).
//! * **In-engine batch sharding** ([`EngineConfig::with_threads`]): large
//!   batched conv/linear sweeps shard across scoped worker threads by
//!   contiguous batch-row ranges inside the engine — disjoint writeback,
//!   unchanged accumulation chains, hooks still on the calling thread in
//!   per-row program order — so results are bit-identical at any thread
//!   count.
//!
//! Both knobs live in an explicit, caller-owned [`EngineConfig`] threaded
//! through the `*_cfg` forward entry points; the non-`_cfg` entry points
//! run under [`EngineConfig::default`] (serial, SIMD-dispatched). There is
//! no process-wide engine state.
//!
//! Hooks map onto batches per row: [`ForwardHooks::on_batch_input`] and
//! [`ForwardHooks::on_batch_activation`] receive `(batch_row, layer,
//! values)` in per-row program order and default to the single-sample
//! methods, so existing hooks (range recording, dynamic fault injection)
//! work unchanged; [`PerRowHooks`] gives each row its own stateful hook,
//! reproducing per-episode fault injection bit-exactly on the batched path.
//!
//! # Examples
//!
//! ```
//! use navft_nn::{C3f2Config, Tensor};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let config = C3f2Config::scaled();
//! let policy = config.build(&mut rng);
//! let frame = Tensor::zeros(&config.input_shape());
//! let q_values = policy.forward(&frame);
//! assert_eq!(q_values.len(), config.actions);
//! ```

// `deny`, not `forbid`: the `simd` module opts back in with a module-level
// `allow` for its feature-gated intrinsics; everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod models;
pub mod simd;

mod element;
mod engine;
mod gemm;
mod i8network;
mod i8tensor;
mod network;
mod qnetwork;
mod qtensor;
mod scratch;
mod tensor;

pub use element::{Element, I8Affine};
pub use engine::EngineConfig;
pub use i8network::{I8Conv2d, I8ForwardHooks, I8Layer, I8Linear, I8Network, I8Scratch};
pub use i8tensor::I8Tensor;
pub use layer::{Conv2d, Linear};
pub use layer::{Layer, LayerBase, LayerKind};
pub use models::{c3f2, c3f2_scaled, mlp, parametric_layer_names, C3f2Config};
pub use network::{
    DynRowHooks, ForwardHooks, ForwardTrace, HooksFor, Network, NetworkBase, NoHooks, PerRowHooks,
    RangeRecorder,
};
pub use qnetwork::{
    network_bit_stats, QConv2d, QForwardHooks, QLayer, QLinear, QNetwork, QScratch,
};
pub use qtensor::QTensor;
pub use scratch::Scratch;
pub use simd::simd_kernel_name;
pub use tensor::{argmax, Tensor, TensorBase};

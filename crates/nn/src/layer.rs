//! Network layers: convolution, pooling, activation and fully-connected —
//! one generic implementation shared by every numeric backend.
//!
//! [`Conv2dBase`], [`LinearBase`] and [`LayerBase`] are generic over the
//! [`Element`] type; the `f32` backend uses the [`Conv2d`] / [`Linear`] /
//! [`Layer`] aliases, the native fixed-point backend the
//! [`QConv2d`](crate::QConv2d) / [`QLinear`](crate::QLinear) /
//! [`QLayer`](crate::QLayer) aliases of the *same* types. There is exactly
//! one convolution loop, one fully-connected loop and one pooling loop in
//! the crate; what differs per backend is the element arithmetic the
//! [`Element`] trait supplies (plain float MACs versus widened-accumulator
//! integer MACs with one saturating requantize per output element).

use std::fmt;

use rand::Rng;

use crate::element::Element;
use crate::Tensor;

/// The kind of a layer, used by experiments that sweep fault sensitivity per
/// layer type (Fig. 7d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d,
    /// 2-D max pooling.
    MaxPool2d,
    /// Rectified linear unit.
    Relu,
    /// Shape flattening (no parameters).
    Flatten,
    /// Fully-connected (linear) layer.
    Linear,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayerKind::Conv2d => "conv2d",
            LayerKind::MaxPool2d => "maxpool2d",
            LayerKind::Relu => "relu",
            LayerKind::Flatten => "flatten",
            LayerKind::Linear => "linear",
        })
    }
}

/// Output spatial extent of a valid-padding sliding window: shared by every
/// backend so their shape inference can never diverge.
pub(crate) fn window_output_size(input: usize, kernel: usize, stride: usize) -> usize {
    (input - kernel) / stride + 1
}

/// A 2-D convolution layer over `[C, H, W]` inputs (valid padding), generic
/// over the backend's element type.
///
/// Use the aliases: [`Conv2d`] (`f32`) or [`QConv2d`](crate::QConv2d) (raw
/// Q-format words).
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2dBase<E: Element> {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Filter weights, laid out `[out, in, k, k]` row-major.
    pub weights: Vec<E>,
    /// Per-output-channel biases.
    pub bias: Vec<E>,
}

/// A 2-D `f32` convolution layer over `[C, H, W]` inputs (valid padding).
pub type Conv2d = Conv2dBase<f32>;

impl Eq for Conv2dBase<i32> {}

impl<E: Element> Conv2dBase<E> {
    /// Output spatial size for an input of extent `input`.
    pub fn output_size(&self, input: usize) -> usize {
        window_output_size(input, self.kernel, self.stride)
    }

    /// The `[C, H, W]` output shape for a `[C, H, W]` input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is not 3-dimensional with `in_channels`
    /// channels or is smaller than the kernel.
    pub fn output_shape(&self, in_shape: &[usize]) -> [usize; 3] {
        assert_eq!(in_shape.len(), 3, "conv2d expects a [C, H, W] input");
        assert_eq!(in_shape[0], self.in_channels, "conv2d input channel mismatch");
        let (h, w) = (in_shape[1], in_shape[2]);
        assert!(h >= self.kernel && w >= self.kernel, "conv2d input smaller than kernel");
        [self.out_channels, self.output_size(h), self.output_size(w)]
    }

    /// The reduction length of one output element: `in_channels × k × k`
    /// (the K dimension of the im2row GEMM view of this convolution).
    pub(crate) fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Runs the convolution on a flat `[C, H, W]` buffer, writing every
    /// output element into the caller-provided `out` buffer (no allocation).
    ///
    /// This is the *naive* (direct) kernel: one accumulator per output
    /// element, fed in `(ic, ky, kx)` order. The blocked GEMM path of the
    /// batched engine accumulates in exactly the same order, so the two
    /// paths agree bit for bit on every backend.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are invalid or `out` has the wrong length.
    pub fn forward_naive(&self, data: &[E], in_shape: &[usize], out: &mut [E], ctx: E::Ctx) {
        let [_, oh, ow] = self.output_shape(in_shape);
        let (h, w) = (in_shape[1], in_shape[2]);
        assert_eq!(data.len(), self.in_channels * h * w, "conv2d input buffer length mismatch");
        assert_eq!(out.len(), self.out_channels * oh * ow, "conv2d output buffer length mismatch");
        let k = self.kernel;
        for oc in 0..self.out_channels {
            let w_base = oc * self.in_channels * k * k;
            let out_base = oc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = E::acc_init(self.bias[oc], ctx);
                    let iy0 = oy * self.stride;
                    let ix0 = ox * self.stride;
                    for ic in 0..self.in_channels {
                        let in_base = ic * h * w;
                        let wk_base = w_base + ic * k * k;
                        for ky in 0..k {
                            let row = in_base + (iy0 + ky) * w + ix0;
                            let wrow = wk_base + ky * k;
                            for kx in 0..k {
                                acc = E::mac(acc, data[row + kx], self.weights[wrow + kx]);
                            }
                        }
                    }
                    out[out_base + oy * ow + ox] = E::finish(acc, ctx);
                }
            }
        }
    }
}

impl Conv2d {
    /// Creates a convolution with He-uniform initialised weights.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Conv2d {
        let fan_in = in_channels * kernel * kernel;
        let scale = (2.0 / fan_in as f32).sqrt();
        let weights = (0..out_channels * fan_in).map(|_| rng.gen_range(-scale..=scale)).collect();
        Conv2d { in_channels, out_channels, kernel, stride, weights, bias: vec![0.0; out_channels] }
    }

    /// Runs the convolution on a `[C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 3-dimensional with `in_channels` channels or
    /// is smaller than the kernel.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&self.output_shape(input.shape()));
        self.forward_into(input.data(), input.shape(), out.data_mut());
        out
    }

    /// Runs the convolution on a flat `[C, H, W]` buffer, writing every output
    /// element into the caller-provided `out` buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are invalid or `out` has the wrong length.
    pub fn forward_into(&self, data: &[f32], in_shape: &[usize], out: &mut [f32]) {
        self.forward_naive(data, in_shape, out, ());
    }
}

/// A 2-D max-pooling layer over `[C, H, W]` inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2d {
    /// Square pooling window.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer.
    pub fn new(kernel: usize, stride: usize) -> MaxPool2d {
        MaxPool2d { kernel, stride }
    }

    /// Output spatial size for an input of extent `input`.
    pub fn output_size(&self, input: usize) -> usize {
        window_output_size(input, self.kernel, self.stride)
    }

    /// The `[C, H, W]` output shape for a `[C, H, W]` input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is not 3-dimensional or is smaller than the
    /// window.
    pub fn output_shape(&self, in_shape: &[usize]) -> [usize; 3] {
        assert_eq!(in_shape.len(), 3, "maxpool2d expects a [C, H, W] input");
        let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
        assert!(h >= self.kernel && w >= self.kernel, "maxpool2d input smaller than window");
        [c, self.output_size(h), self.output_size(w)]
    }

    /// Runs the pooling on a `[C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 3-dimensional or is smaller than the window.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&self.output_shape(input.shape()));
        self.forward_into(input.data(), input.shape(), out.data_mut());
        out
    }

    /// Runs the pooling on a flat `[C, H, W]` buffer, writing every output
    /// element into the caller-provided `out` buffer (no allocation).
    ///
    /// The kernel is generic over the element type because max pooling is
    /// pure order comparison: the `f32` backend pools dequantized values, the
    /// native fixed-point backend pools raw two's-complement words, and the
    /// two agree exactly since dequantization is monotonic in the raw word.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are invalid or `out` has the wrong length.
    pub fn forward_into<T: Copy + PartialOrd>(
        &self,
        data: &[T],
        in_shape: &[usize],
        out: &mut [T],
    ) {
        let [c, oh, ow] = self.output_shape(in_shape);
        let (h, w) = (in_shape[1], in_shape[2]);
        assert_eq!(data.len(), c * h * w, "maxpool2d input buffer length mismatch");
        assert_eq!(out.len(), c * oh * ow, "maxpool2d output buffer length mismatch");
        for ch in 0..c {
            let in_base = ch * h * w;
            let out_base = ch * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = data[in_base + oy * self.stride * w + ox * self.stride];
                    for ky in 0..self.kernel {
                        let row = in_base + (oy * self.stride + ky) * w + ox * self.stride;
                        for kx in 0..self.kernel {
                            let v = data[row + kx];
                            // `f32::max` fold semantics: an incomparable
                            // element (f32 NaN) never wins, and a comparable
                            // one replaces an incomparable best, so NaNs are
                            // skipped. For totally ordered types (raw words)
                            // this reduces to `v > best`.
                            if v > best
                                || (best.partial_cmp(&v).is_none() && v.partial_cmp(&v).is_some())
                            {
                                best = v;
                            }
                        }
                    }
                    out[out_base + oy * ow + ox] = best;
                }
            }
        }
    }
}

/// A fully-connected layer `y = W x + b`, generic over the backend's element
/// type.
///
/// Use the aliases: [`Linear`] (`f32`) or [`QLinear`](crate::QLinear) (raw
/// Q-format words).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearBase<E: Element> {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Weights, laid out `[out, in]` row-major.
    pub weights: Vec<E>,
    /// Per-output biases.
    pub bias: Vec<E>,
}

/// A fully-connected `f32` layer `y = W x + b`.
pub type Linear = LinearBase<f32>;

impl Eq for LinearBase<i32> {}

impl<E: Element> LinearBase<E> {
    /// Runs the layer on a flat buffer, writing every output element into the
    /// caller-provided `out` buffer (no allocation).
    ///
    /// This is the *naive* kernel: one accumulator per output, fed in input
    /// order — the blocked GEMM path accumulates identically, so the two
    /// paths agree bit for bit on every backend.
    ///
    /// # Panics
    ///
    /// Panics if the input length differs from `in_features` or `out` from
    /// `out_features`.
    pub fn forward_naive(&self, x: &[E], _in_shape: &[usize], out: &mut [E], ctx: E::Ctx) {
        assert_eq!(x.len(), self.in_features, "linear input length mismatch");
        assert_eq!(out.len(), self.out_features, "linear output buffer length mismatch");
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = E::acc_init(self.bias[o], ctx);
            for (w, xi) in row.iter().zip(x.iter()) {
                acc = E::mac(acc, *xi, *w);
            }
            *out_v = E::finish(acc, ctx);
        }
    }
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform initialised weights.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Linear {
        let scale = (6.0 / (in_features + out_features) as f32).sqrt();
        let weights =
            (0..in_features * out_features).map(|_| rng.gen_range(-scale..=scale)).collect();
        Linear { in_features, out_features, weights, bias: vec![0.0; out_features] }
    }

    /// Runs the layer on a flat input.
    ///
    /// # Panics
    ///
    /// Panics if the input length differs from `in_features`.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&[self.out_features]);
        self.forward_into(input.data(), input.shape(), out.data_mut());
        out
    }

    /// Runs the layer on a flat buffer, writing every output element into the
    /// caller-provided `out` buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the input length differs from `in_features` or `out` from
    /// `out_features`.
    pub fn forward_into(&self, x: &[f32], in_shape: &[usize], out: &mut [f32]) {
        self.forward_naive(x, in_shape, out, ());
    }
}

/// A network layer, generic over the backend's element type.
///
/// Layers are a closed enum rather than a trait object so that training code
/// and per-layer fault targeting can match on the concrete kind. Use the
/// aliases: [`Layer`] (`f32`) or [`QLayer`](crate::QLayer) (raw Q-format
/// words).
#[derive(Debug, Clone, PartialEq)]
pub enum LayerBase<E: Element> {
    /// 2-D convolution.
    Conv2d(Conv2dBase<E>),
    /// 2-D max pooling (pure order comparison, parameter-free).
    MaxPool2d(MaxPool2d),
    /// Rectified linear unit.
    Relu,
    /// Flatten to a vector.
    Flatten,
    /// Fully-connected layer.
    Linear(LinearBase<E>),
}

/// An `f32` network layer.
pub type Layer = LayerBase<f32>;

impl Eq for LayerBase<i32> {}

impl<E: Element> LayerBase<E> {
    /// The layer kind.
    pub fn kind(&self) -> LayerKind {
        match self {
            LayerBase::Conv2d(_) => LayerKind::Conv2d,
            LayerBase::MaxPool2d(_) => LayerKind::MaxPool2d,
            LayerBase::Relu => LayerKind::Relu,
            LayerBase::Flatten => LayerKind::Flatten,
            LayerBase::Linear(_) => LayerKind::Linear,
        }
    }

    /// Writes the layer's output shape for `in_shape` into `out` (cleared
    /// first, so a reused `Vec` never allocates once warm).
    ///
    /// # Panics
    ///
    /// Panics if `in_shape` is not a valid input shape for this layer.
    pub fn output_shape(&self, in_shape: &[usize], out: &mut Vec<usize>) {
        out.clear();
        match self {
            LayerBase::Conv2d(conv) => out.extend_from_slice(&conv.output_shape(in_shape)),
            LayerBase::MaxPool2d(pool) => out.extend_from_slice(&pool.output_shape(in_shape)),
            LayerBase::Relu => out.extend_from_slice(in_shape),
            LayerBase::Flatten => out.push(in_shape.iter().product()),
            LayerBase::Linear(linear) => {
                let len: usize = in_shape.iter().product();
                assert_eq!(len, linear.in_features, "linear input length mismatch");
                out.push(linear.out_features);
            }
        }
    }

    /// Runs the layer on a flat buffer through the naive per-element
    /// kernels, writing the output into the caller-provided `out` buffer.
    /// `Relu` and `Flatten` degrade to a copy here; the batched engine
    /// applies them in place instead.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are invalid or `out` has the wrong length.
    pub fn forward_naive(&self, data: &[E], in_shape: &[usize], out: &mut [E], ctx: E::Ctx) {
        match self {
            LayerBase::Conv2d(conv) => conv.forward_naive(data, in_shape, out, ctx),
            LayerBase::MaxPool2d(pool) => pool.forward_into(data, in_shape, out),
            LayerBase::Relu | LayerBase::Flatten => {
                out.copy_from_slice(data);
                if matches!(self, LayerBase::Relu) {
                    Self::relu_in_place(out);
                }
            }
            LayerBase::Linear(linear) => linear.forward_naive(data, in_shape, out, ctx),
        }
    }

    /// Applies the ReLU non-linearity in place (the batched engine's
    /// zero-copy path for ReLU layers).
    pub fn relu_in_place(values: &mut [E]) {
        for v in values.iter_mut() {
            *v = v.relu();
        }
    }

    /// Whether the layer transforms values without moving them between
    /// buffers: `Relu` rewrites elements in place and `Flatten` only changes
    /// the shape. The batched engine skips the slab swap for these.
    pub fn is_in_place(&self) -> bool {
        matches!(self, LayerBase::Relu | LayerBase::Flatten)
    }

    /// The layer's weight buffer, if it has parameters.
    pub fn weights(&self) -> Option<&[E]> {
        match self {
            LayerBase::Conv2d(conv) => Some(&conv.weights),
            LayerBase::Linear(linear) => Some(&linear.weights),
            _ => None,
        }
    }

    /// The layer's weight buffer, mutably — the weight-fault injection
    /// surface.
    pub fn weights_mut(&mut self) -> Option<&mut Vec<E>> {
        match self {
            LayerBase::Conv2d(conv) => Some(&mut conv.weights),
            LayerBase::Linear(linear) => Some(&mut linear.weights),
            _ => None,
        }
    }

    /// The layer's bias buffer, if it has parameters.
    pub fn biases(&self) -> Option<&[E]> {
        match self {
            LayerBase::Conv2d(conv) => Some(&conv.bias),
            LayerBase::Linear(linear) => Some(&linear.bias),
            _ => None,
        }
    }

    /// The layer's bias buffer, mutably.
    pub fn biases_mut(&mut self) -> Option<&mut Vec<E>> {
        match self {
            LayerBase::Conv2d(conv) => Some(&mut conv.bias),
            LayerBase::Linear(linear) => Some(&mut linear.bias),
            _ => None,
        }
    }

    /// Whether the layer holds trainable parameters.
    pub fn is_parametric(&self) -> bool {
        self.weights().is_some()
    }
}

impl Layer {
    /// Runs the layer.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(conv) => conv.forward(input),
            Layer::MaxPool2d(pool) => pool.forward(input),
            Layer::Relu => input.map(|v| v.max(0.0)),
            Layer::Flatten => input.reshape(&[input.len()]),
            Layer::Linear(linear) => linear.forward(input),
        }
    }

    /// Runs the layer on a flat buffer, writing the output into the
    /// caller-provided `out` buffer (no allocation). `Relu` and `Flatten`
    /// degrade to a copy here; the batched engine applies them in place
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are invalid or `out` has the wrong length.
    pub fn forward_into(&self, data: &[f32], in_shape: &[usize], out: &mut [f32]) {
        self.forward_naive(data, in_shape, out, ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn conv_identity_kernel_reproduces_input() {
        let mut conv = Conv2d {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            weights: vec![1.0],
            bias: vec![0.0],
        };
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(conv.forward(&input).data(), input.data());
        conv.bias = vec![1.0];
        assert_eq!(conv.forward(&input).data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn conv_sums_over_window_and_channels() {
        let conv = Conv2d {
            in_channels: 2,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            weights: vec![1.0; 8],
            bias: vec![0.0],
        };
        let input = Tensor::full(&[2, 3, 3], 1.0);
        let out = conv.forward(&input);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert!(out.data().iter().all(|&v| v == 8.0));
    }

    #[test]
    fn conv_stride_reduces_output() {
        let mut rng = SmallRng::seed_from_u64(0);
        let conv = Conv2d::new(1, 4, 3, 2, &mut rng);
        assert_eq!(conv.output_size(7), 3);
        let out = conv.forward(&Tensor::zeros(&[1, 7, 7]));
        assert_eq!(out.shape(), &[4, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_rejects_wrong_channel_count() {
        let mut rng = SmallRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 4, 3, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(&[1, 5, 5]));
    }

    #[test]
    fn maxpool_takes_window_maximum() {
        let pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, -1.0, 7.0]);
        let out = pool.forward(&input);
        assert_eq!(out.shape(), &[1, 1, 2]);
        assert_eq!(out.data(), &[5.0, 7.0]);
    }

    #[test]
    fn maxpool_skips_nan_like_f32_max() {
        let pool = MaxPool2d::new(2, 1);
        let input = Tensor::from_vec(&[1, 2, 2], vec![f32::NAN, 1.0, 0.5, -2.0]);
        assert_eq!(pool.forward(&input).data(), &[1.0]);
        let trailing_nan = Tensor::from_vec(&[1, 2, 2], vec![0.5, -2.0, 1.0, f32::NAN]);
        assert_eq!(pool.forward(&trailing_nan).data(), &[1.0]);
    }

    #[test]
    fn linear_computes_affine_map() {
        let linear = Linear {
            in_features: 2,
            out_features: 2,
            weights: vec![1.0, 2.0, 3.0, 4.0],
            bias: vec![0.5, -0.5],
        };
        let out = linear.forward(&Tensor::from_vec(&[2], vec![1.0, 1.0]));
        assert_eq!(out.data(), &[3.5, 6.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn linear_rejects_wrong_input_length() {
        let mut rng = SmallRng::seed_from_u64(0);
        let linear = Linear::new(4, 2, &mut rng);
        let _ = linear.forward(&Tensor::zeros(&[3]));
    }

    #[test]
    fn relu_and_flatten() {
        let input = Tensor::from_vec(&[1, 2, 2], vec![-1.0, 2.0, -3.0, 4.0]);
        assert_eq!(Layer::Relu.forward(&input).data(), &[0.0, 2.0, 0.0, 4.0]);
        let flat = Layer::Flatten.forward(&input);
        assert_eq!(flat.shape(), &[4]);
    }

    #[test]
    fn layer_kinds_and_weight_access() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut layer = Layer::Linear(Linear::new(2, 3, &mut rng));
        assert_eq!(layer.kind(), LayerKind::Linear);
        assert!(layer.is_parametric());
        assert_eq!(layer.weights().map(|w| w.len()), Some(6));
        layer.weights_mut().expect("has weights")[0] = 9.0;
        assert_eq!(layer.weights().expect("has weights")[0], 9.0);
        assert!(!Layer::Relu.is_parametric());
        assert!(Layer::Flatten.weights().is_none());
        assert_eq!(LayerKind::Conv2d.to_string(), "conv2d");
    }

    #[test]
    fn initialised_weights_are_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let conv = Conv2d::new(3, 8, 3, 1, &mut rng);
        let fan_in = 27.0f32;
        let bound = (2.0 / fan_in).sqrt();
        assert!(conv.weights.iter().all(|w| w.abs() <= bound));
        let linear = Linear::new(10, 5, &mut rng);
        let bound = (6.0 / 15.0f32).sqrt();
        assert!(linear.weights.iter().all(|w| w.abs() <= bound));
    }

    #[test]
    fn generic_naive_kernels_serve_raw_words_too() {
        // The same conv code runs the quantized backend: Q3_4 words, widened
        // accumulate, one requantize per output.
        use navft_qformat::QFormat;
        let conv: Conv2dBase<i32> = Conv2dBase {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            weights: vec![16], // 1.0 in Q3_4
            bias: vec![8],     // 0.5
        };
        let data = [16i32, 32, -16, 48]; // 1.0, 2.0, -1.0, 3.0
        let mut out = [0i32; 4];
        conv.forward_naive(&data, &[1, 2, 2], &mut out, QFormat::Q3_4);
        assert_eq!(out, [24, 40, -8, 56]); // x + 0.5 on the Q3_4 grid
    }
}

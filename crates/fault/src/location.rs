use std::fmt;

/// The accelerator memory structure a fault lands in.
///
/// §3.2 of the paper considers faults in memory: the data buffer of tabular
/// policies and the input / filter (weight) / output (activation) buffers of
/// neural-network policies. Datapath (MAC) faults are modelled as corrupted
/// values in the output buffer, so they are covered by
/// [`FaultSite::ActivationBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The buffer holding tabular Q-values.
    TabularBuffer,
    /// The buffer holding the input feature map (for NN policies, the camera
    /// frame).
    InputBuffer,
    /// The buffer holding layer weights (filters and fully-connected
    /// matrices).
    WeightBuffer,
    /// The buffer holding layer outputs / activations; also where datapath
    /// faults manifest.
    ActivationBuffer,
}

impl FaultSite {
    /// All sites swept by the fault-location experiment (Fig. 7c).
    pub const ALL: [FaultSite; 4] = [
        FaultSite::TabularBuffer,
        FaultSite::InputBuffer,
        FaultSite::WeightBuffer,
        FaultSite::ActivationBuffer,
    ];
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultSite::TabularBuffer => "tabular buffer",
            FaultSite::InputBuffer => "input buffer",
            FaultSite::WeightBuffer => "weight buffer",
            FaultSite::ActivationBuffer => "activation buffer",
        };
        f.write_str(name)
    }
}

/// A fault target: a memory site, optionally narrowed to a single layer.
///
/// The per-layer sensitivity experiment (Fig. 7d) injects bit flips into the
/// weights of one layer at a time; `layer: Some(i)` expresses that.
///
/// # Examples
///
/// ```
/// use navft_fault::{FaultSite, FaultTarget};
///
/// let whole_network = FaultTarget::new(FaultSite::WeightBuffer);
/// let conv1_only = FaultTarget::layer(FaultSite::WeightBuffer, 0);
/// assert!(whole_network.covers_layer(3));
/// assert!(!conv1_only.covers_layer(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultTarget {
    site: FaultSite,
    layer: Option<usize>,
}

impl FaultTarget {
    /// Targets every layer's instance of `site`.
    pub fn new(site: FaultSite) -> FaultTarget {
        FaultTarget { site, layer: None }
    }

    /// Targets only layer `layer`'s instance of `site`.
    pub fn layer(site: FaultSite, layer: usize) -> FaultTarget {
        FaultTarget { site, layer: Some(layer) }
    }

    /// The memory site targeted.
    pub fn site(&self) -> FaultSite {
        self.site
    }

    /// The layer restriction, if any.
    pub fn layer_index(&self) -> Option<usize> {
        self.layer
    }

    /// Whether faults under this target should be injected into layer
    /// `layer`.
    pub fn covers_layer(&self, layer: usize) -> bool {
        self.layer.is_none_or(|l| l == layer)
    }
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.layer {
            Some(layer) => write!(f, "{} (layer {layer})", self.site),
            None => write!(f, "{}", self.site),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_listed_once() {
        assert_eq!(FaultSite::ALL.len(), 4);
    }

    #[test]
    fn target_layer_coverage() {
        let t = FaultTarget::layer(FaultSite::WeightBuffer, 2);
        assert!(t.covers_layer(2));
        assert!(!t.covers_layer(0));
        assert_eq!(t.layer_index(), Some(2));
        assert_eq!(t.site(), FaultSite::WeightBuffer);

        let any = FaultTarget::new(FaultSite::ActivationBuffer);
        assert!(any.covers_layer(0));
        assert!(any.covers_layer(99));
        assert_eq!(any.layer_index(), None);
    }

    #[test]
    fn display_mentions_layer_when_present() {
        assert_eq!(FaultTarget::new(FaultSite::InputBuffer).to_string(), "input buffer");
        assert_eq!(
            FaultTarget::layer(FaultSite::WeightBuffer, 4).to_string(),
            "weight buffer (layer 4)"
        );
    }
}

use std::fmt;

/// Whether a fault pattern is injected before execution or while it runs.
///
/// §3.3 of the paper: permanent faults and transient faults in weights are
/// injected *statically* (they are known before the run starts), while
/// transient faults in activations are injected *dynamically* because the
/// corrupted values depend on the input being processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InjectionMode {
    /// The fault pattern is applied to the buffer before the run starts.
    #[default]
    Static,
    /// The fault pattern is applied to values as they are produced during the
    /// run (implemented as tensor-operation hooks, as in the paper).
    Dynamic,
}

impl fmt::Display for InjectionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InjectionMode::Static => "static",
            InjectionMode::Dynamic => "dynamic",
        })
    }
}

/// When, during a training run or flight, the fault strikes.
///
/// Training-time experiments (Fig. 2, Fig. 7a) inject transient faults at a
/// single episode index and permanent faults from episode 0 onwards; the
/// schedule captures both.
///
/// # Examples
///
/// ```
/// use navft_fault::InjectionSchedule;
///
/// let schedule = InjectionSchedule::at_episode(900);
/// assert!(schedule.triggers_at(900));
/// assert!(!schedule.triggers_at(899));
/// assert!(InjectionSchedule::from_start().triggers_at(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectionSchedule {
    episode: usize,
    mode: InjectionMode,
}

impl InjectionSchedule {
    /// The fault strikes at the beginning of `episode` (0-based).
    pub fn at_episode(episode: usize) -> InjectionSchedule {
        InjectionSchedule { episode, mode: InjectionMode::Static }
    }

    /// The fault is present from the very first episode (permanent-fault
    /// semantics).
    pub fn from_start() -> InjectionSchedule {
        InjectionSchedule { episode: 0, mode: InjectionMode::Static }
    }

    /// Selects dynamic (during-execution) injection for this schedule.
    pub fn dynamic(mut self) -> InjectionSchedule {
        self.mode = InjectionMode::Dynamic;
        self
    }

    /// The episode (or step) index at which the fault strikes.
    pub fn episode(&self) -> usize {
        self.episode
    }

    /// The injection mode.
    pub fn mode(&self) -> InjectionMode {
        self.mode
    }

    /// Whether the fault should be injected when execution reaches
    /// `episode`.
    pub fn triggers_at(&self, episode: usize) -> bool {
        episode == self.episode
    }

    /// Whether the fault has already been injected by the time execution
    /// reaches `episode`.
    pub fn active_at(&self, episode: usize) -> bool {
        episode >= self.episode
    }
}

impl Default for InjectionSchedule {
    fn default() -> Self {
        InjectionSchedule::from_start()
    }
}

impl fmt::Display for InjectionSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} injection at episode {}", self.mode, self.episode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_active_semantics() {
        let s = InjectionSchedule::at_episode(250);
        assert!(!s.triggers_at(249));
        assert!(s.triggers_at(250));
        assert!(!s.triggers_at(251));
        assert!(!s.active_at(249));
        assert!(s.active_at(250));
        assert!(s.active_at(1000));
    }

    #[test]
    fn from_start_is_always_active() {
        let s = InjectionSchedule::from_start();
        assert_eq!(s.episode(), 0);
        assert!(s.active_at(0));
        assert!(s.triggers_at(0));
    }

    #[test]
    fn dynamic_builder_sets_mode() {
        let s = InjectionSchedule::at_episode(10).dynamic();
        assert_eq!(s.mode(), InjectionMode::Dynamic);
        assert_eq!(InjectionSchedule::default().mode(), InjectionMode::Static);
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(InjectionSchedule::at_episode(5).to_string(), "static injection at episode 5");
        assert_eq!(InjectionMode::Dynamic.to_string(), "dynamic");
    }
}

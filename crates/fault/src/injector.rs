use rand::Rng;

use navft_qformat::QFormat;

use crate::{FaultKind, FaultMap, FaultTarget};

/// A reusable fault injector bound to a target buffer description.
///
/// [`FaultMap`] is a one-shot sampled pattern; `Injector` wraps the pattern
/// together with the buffer's quantization format and target description so
/// higher-level code (training loops, inference engines) can hand buffers to
/// it without tracking formats and sites separately.
///
/// # Examples
///
/// ```
/// use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
/// use navft_qformat::QFormat;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let injector = Injector::sample(
///     FaultTarget::new(FaultSite::WeightBuffer),
///     256,
///     QFormat::Q4_11,
///     0.001,
///     FaultKind::BitFlip,
///     &mut rng,
/// );
/// let mut weights = vec![0.1f32; 256];
/// injector.corrupt(&mut weights);
/// assert_eq!(injector.fault_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Injector {
    target: FaultTarget,
    format: QFormat,
    map: FaultMap,
}

impl Injector {
    /// Creates an injector from an already-sampled fault map.
    pub fn new(target: FaultTarget, format: QFormat, map: FaultMap) -> Injector {
        Injector { target, format, map }
    }

    /// Creates an injector that injects no faults (the fault-free baseline).
    pub fn fault_free(target: FaultTarget, format: QFormat) -> Injector {
        Injector { target, format, map: FaultMap::new() }
    }

    /// Samples a fresh fault pattern at the given bit error rate.
    pub fn sample<R: Rng + ?Sized>(
        target: FaultTarget,
        num_words: usize,
        format: QFormat,
        ber: f64,
        kind: FaultKind,
        rng: &mut R,
    ) -> Injector {
        let map = FaultMap::sample(num_words, format, ber, kind, rng);
        Injector { target, format, map }
    }

    /// The buffer this injector targets.
    pub fn target(&self) -> FaultTarget {
        self.target
    }

    /// The quantization format of the target buffer.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The underlying fault map.
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// Number of faulty bits.
    pub fn fault_count(&self) -> usize {
        self.map.len()
    }

    /// Applies the fault pattern once to `values` (transient semantics).
    pub fn corrupt(&self, values: &mut [f32]) {
        self.map.corrupt_f32(values, self.format);
    }

    /// Re-enforces the permanent faults of the pattern on `values`.
    pub fn enforce(&self, values: &mut [f32]) {
        self.map.enforce_f32(values, self.format);
    }

    /// Whether this injector carries permanent faults that must be re-enforced
    /// after every buffer update.
    pub fn has_permanent(&self) -> bool {
        self.map.has_permanent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultSite;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fault_free_injector_is_a_no_op() {
        let injector =
            Injector::fault_free(FaultTarget::new(FaultSite::WeightBuffer), QFormat::Q4_11);
        let mut buf = vec![0.5f32; 16];
        injector.corrupt(&mut buf);
        injector.enforce(&mut buf);
        assert!(buf.iter().all(|&v| v == 0.5));
        assert_eq!(injector.fault_count(), 0);
        assert!(!injector.has_permanent());
    }

    #[test]
    fn sampled_injector_reports_its_configuration() {
        let mut rng = SmallRng::seed_from_u64(11);
        let target = FaultTarget::layer(FaultSite::ActivationBuffer, 2);
        let injector =
            Injector::sample(target, 64, QFormat::Q3_4, 0.01, FaultKind::StuckAt1, &mut rng);
        assert_eq!(injector.target(), target);
        assert_eq!(injector.format(), QFormat::Q3_4);
        assert_eq!(injector.fault_count(), 5); // 1% of 512 bits
        assert!(injector.has_permanent());
        assert_eq!(injector.map().len(), 5);
    }

    #[test]
    fn corrupt_changes_some_value_at_high_ber() {
        let mut rng = SmallRng::seed_from_u64(5);
        let injector = Injector::sample(
            FaultTarget::new(FaultSite::InputBuffer),
            32,
            QFormat::Q4_11,
            0.1,
            FaultKind::BitFlip,
            &mut rng,
        );
        let mut buf = vec![0.25f32; 32];
        injector.corrupt(&mut buf);
        assert!(buf.iter().any(|&v| v != 0.25));
    }
}

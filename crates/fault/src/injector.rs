use rand::Rng;

use navft_qformat::QFormat;

use crate::{FaultKind, FaultMap, FaultTarget, StoredWord};

/// A reusable fault injector bound to a target buffer description.
///
/// [`FaultMap`] is a one-shot sampled pattern; `Injector` wraps the pattern
/// together with the buffer's quantization format and target description so
/// higher-level code (training loops, inference engines) can hand buffers to
/// it without tracking formats and sites separately.
///
/// # Examples
///
/// ```
/// use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
/// use navft_qformat::QFormat;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let injector = Injector::sample(
///     FaultTarget::new(FaultSite::WeightBuffer),
///     256,
///     QFormat::Q4_11,
///     0.001,
///     FaultKind::BitFlip,
///     &mut rng,
/// );
/// let mut weights = vec![0.1f32; 256];
/// injector.corrupt(&mut weights);
/// assert_eq!(injector.fault_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Injector {
    target: FaultTarget,
    format: QFormat,
    map: FaultMap,
}

impl Injector {
    /// Creates an injector from an already-sampled fault map.
    pub fn new(target: FaultTarget, format: QFormat, map: FaultMap) -> Injector {
        Injector { target, format, map }
    }

    /// Creates an injector that injects no faults (the fault-free baseline).
    pub fn fault_free(target: FaultTarget, format: QFormat) -> Injector {
        Injector { target, format, map: FaultMap::new() }
    }

    /// Samples a fresh fault pattern at the given bit error rate.
    pub fn sample<R: Rng + ?Sized>(
        target: FaultTarget,
        num_words: usize,
        format: QFormat,
        ber: f64,
        kind: FaultKind,
        rng: &mut R,
    ) -> Injector {
        let map = FaultMap::sample(num_words, format, ber, kind, rng);
        Injector { target, format, map }
    }

    /// The buffer this injector targets.
    pub fn target(&self) -> FaultTarget {
        self.target
    }

    /// The quantization format of the target buffer.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The underlying fault map.
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// Number of faulty bits.
    pub fn fault_count(&self) -> usize {
        self.map.len()
    }

    /// Applies the fault pattern once to a buffer of any [`StoredWord`]
    /// representation (transient semantics).
    ///
    /// This is the single generic corruption entry point: for `f32` buffers
    /// that model Q-format storage the quantize → corrupt → dequantize round
    /// trip lives in the [`StoredWord`] impl (and nowhere else); buffers that
    /// natively hold raw `i32` words corrupt with single integer operations
    /// and no round trip.
    pub fn corrupt<W: StoredWord>(&self, words: &mut [W]) {
        self.corrupt_span(0, words);
    }

    /// Applies the faults that fall inside the window starting at word
    /// `first_word` to `words` (e.g. one layer's buffer within a fault map
    /// sampled over a whole network's concatenated weight space).
    pub fn corrupt_span<W: StoredWord>(&self, first_word: usize, words: &mut [W]) {
        self.map.corrupt_span(first_word, words, self.format);
    }

    /// Re-enforces the permanent faults of the pattern on `words`.
    pub fn enforce<W: StoredWord>(&self, words: &mut [W]) {
        self.enforce_span(0, words);
    }

    /// Window variant of [`Injector::enforce`] (see
    /// [`Injector::corrupt_span`]).
    pub fn enforce_span<W: StoredWord>(&self, first_word: usize, words: &mut [W]) {
        self.map.enforce_span(first_word, words, self.format);
    }

    /// Applies the fault pattern once to live raw Q-format words — the
    /// native backend's spelling of [`Injector::corrupt`].
    pub fn corrupt_raw(&self, words: &mut [i32]) {
        self.corrupt_span(0, words);
    }

    /// Window variant of [`Injector::corrupt_raw`] (see
    /// [`Injector::corrupt_span`]).
    pub fn corrupt_raw_span(&self, first_word: usize, words: &mut [i32]) {
        self.corrupt_span(first_word, words);
    }

    /// Re-enforces the permanent faults of the pattern on live raw words.
    pub fn enforce_raw(&self, words: &mut [i32]) {
        self.enforce_span(0, words);
    }

    /// Whether this injector carries permanent faults that must be re-enforced
    /// after every buffer update.
    pub fn has_permanent(&self) -> bool {
        self.map.has_permanent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultSite;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fault_free_injector_is_a_no_op() {
        let injector =
            Injector::fault_free(FaultTarget::new(FaultSite::WeightBuffer), QFormat::Q4_11);
        let mut buf = vec![0.5f32; 16];
        injector.corrupt(&mut buf);
        injector.enforce(&mut buf);
        assert!(buf.iter().all(|&v| v == 0.5));
        assert_eq!(injector.fault_count(), 0);
        assert!(!injector.has_permanent());
    }

    #[test]
    fn sampled_injector_reports_its_configuration() {
        let mut rng = SmallRng::seed_from_u64(11);
        let target = FaultTarget::layer(FaultSite::ActivationBuffer, 2);
        let injector =
            Injector::sample(target, 64, QFormat::Q3_4, 0.01, FaultKind::StuckAt1, &mut rng);
        assert_eq!(injector.target(), target);
        assert_eq!(injector.format(), QFormat::Q3_4);
        assert_eq!(injector.fault_count(), 5); // 1% of 512 bits
        assert!(injector.has_permanent());
        assert_eq!(injector.map().len(), 5);
    }

    #[test]
    fn corrupt_raw_flips_bits_in_the_live_words() {
        // The quantized path corrupts the stored words directly: each bit
        // flip is exactly one XOR on the live buffer, so the before/after
        // words differ in precisely the sampled bit positions — proof that
        // no dequantize → requantize round trip touched the values.
        let fmt = QFormat::Q4_11;
        let mut rng = SmallRng::seed_from_u64(21);
        let injector = Injector::sample(
            FaultTarget::new(FaultSite::WeightBuffer),
            64,
            fmt,
            0.02,
            FaultKind::BitFlip,
            &mut rng,
        );
        let original: Vec<i32> = (0..64).map(|i| i * 37 % 1000 - 500).collect();
        let mut corrupted = original.clone();
        injector.corrupt_raw(&mut corrupted);
        let mut expected = original.clone();
        for fault in injector.map().faults() {
            expected[fault.word] ^= 1 << fault.bit;
            // Re-sign-extend within the 16-bit word, as the live storage does.
            expected[fault.word] = (expected[fault.word] << 16) >> 16;
        }
        assert!(injector.fault_count() > 0);
        assert_eq!(corrupted, expected);
        // Flipping the same pattern again restores the original words.
        injector.corrupt_raw(&mut corrupted);
        assert_eq!(corrupted, original);
    }

    #[test]
    fn corrupt_span_only_touches_the_window() {
        let map = FaultMap::from_faults(vec![
            crate::BitFault { word: 3, bit: 7, kind: FaultKind::BitFlip },
            crate::BitFault { word: 20, bit: 7, kind: FaultKind::BitFlip },
        ]);
        let injector = Injector::new(FaultTarget::new(FaultSite::WeightBuffer), QFormat::Q3_4, map);
        let mut window = vec![1.0f32; 5]; // words 2..7 of the buffer
        injector.corrupt_span(2, &mut window);
        assert!(window[1] < 0.0, "word 3 lands at local index 1");
        assert_eq!(window.iter().filter(|&&v| v != 1.0).count(), 1);
    }

    #[test]
    fn corrupt_changes_some_value_at_high_ber() {
        let mut rng = SmallRng::seed_from_u64(5);
        let injector = Injector::sample(
            FaultTarget::new(FaultSite::InputBuffer),
            32,
            QFormat::Q4_11,
            0.1,
            FaultKind::BitFlip,
            &mut rng,
        );
        let mut buf = vec![0.25f32; 32];
        injector.corrupt(&mut buf);
        assert!(buf.iter().any(|&v| v != 0.25));
    }
}

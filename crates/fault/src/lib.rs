//! Hardware fault models, injectors and campaign machinery.
//!
//! This crate is the fault-injection tool-chain of the paper: it emulates the
//! memory faults that afflict learning-based navigation accelerators —
//! permanent *stuck-at-0* / *stuck-at-1* defects and transient *bit flips*
//! (single-event upsets) — at the level of the quantized fixed-point words
//! stored in the accelerator's buffers.
//!
//! The abstractions mirror §3.2–3.3 of the paper:
//!
//! * [`FaultKind`] — stuck-at-0, stuck-at-1, or bit flip.
//! * [`FaultSite`] / [`FaultTarget`] — which buffer is hit (tabular values,
//!   input feature maps, weights, activations) and optionally which layer.
//! * [`FaultMap`] — a concrete set of (word, bit) faults sampled from a bit
//!   error rate (BER); permanent faults are re-enforced on every access while
//!   transient flips are applied once.
//! * [`Injector`] — the single corruption entry point. For `f32` buffers
//!   that *model* Q-format storage it applies the fault map through a
//!   quantize–corrupt–dequantize round trip ([`Injector::corrupt`]); for
//!   buffers that *natively* hold raw Q-format words (the quantized
//!   inference backend) it flips bits of the live words in place
//!   ([`Injector::corrupt_raw`]) — one integer operation per fault, no
//!   round trip. Span variants ([`Injector::corrupt_span`] /
//!   [`Injector::corrupt_raw_span`]) address one layer's buffer within a
//!   map sampled over a whole network's concatenated weight space.
//! * [`InjectionSchedule`] — *when* the fault strikes (which training episode
//!   or inference step) and whether it is injected statically (before
//!   execution) or dynamically (during execution).
//! * [`campaign`] — repetition/seeding machinery plus one-pass summary
//!   statistics for large fault-injection campaigns, and the work-stealing
//!   [`campaign::run_cells`] scheduler that executes every (cell, repetition)
//!   trial of a whole evaluation run over one shared work queue with
//!   bit-identical-to-serial results.
//!
//! # Examples
//!
//! ```
//! use navft_fault::{FaultKind, FaultMap};
//! use navft_qformat::QFormat;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! // Sample a 1% BER bit-flip pattern over 64 words of 16 bits each.
//! let map = FaultMap::sample(64, QFormat::Q4_11, 0.01, FaultKind::BitFlip, &mut rng);
//! let mut weights = vec![0.5f32; 64];
//! map.corrupt_f32(&mut weights, QFormat::Q4_11);
//! assert!(weights.iter().any(|&w| w != 0.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;

mod injector;
mod location;
mod map;
mod model;
mod schedule;

pub use injector::Injector;
pub use location::{FaultSite, FaultTarget};
pub use map::{BitFault, FaultMap, StoredWord};
pub use model::{FaultKind, FaultSpec, TransientScope};
pub use schedule::{InjectionMode, InjectionSchedule};

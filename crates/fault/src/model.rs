use std::fmt;

use navft_qformat::{QFormat, QValue};
use rand::Rng;

use crate::map::{FaultMap, StoredWord};

/// The physical fault mechanism applied to a single bit.
///
/// Following §3.2 of the paper, permanent faults (manufacturing defects)
/// manifest as bits held at a fixed logic level (*stuck-at-0*/*stuck-at-1*),
/// while transient faults (particle strikes, voltage droops) manifest as
/// random *bit flips*.
///
/// # Examples
///
/// ```
/// use navft_fault::FaultKind;
/// use navft_qformat::{QFormat, QValue};
///
/// let word = QValue::quantize(1.0, QFormat::Q3_4);
/// let hit = FaultKind::StuckAt1.apply(word, QFormat::Q3_4.sign_bit()).unwrap();
/// assert!(hit.to_f32() < 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The bit is permanently held at logic `0`.
    StuckAt0,
    /// The bit is permanently held at logic `1`.
    StuckAt1,
    /// The bit's logic value is inverted once (single-event upset).
    BitFlip,
}

impl FaultKind {
    /// All fault kinds, in the order the paper's figures sweep them.
    pub const ALL: [FaultKind; 3] = [FaultKind::BitFlip, FaultKind::StuckAt0, FaultKind::StuckAt1];

    /// Whether this fault persists for the lifetime of the device (stuck-at
    /// faults) rather than striking once (bit flips).
    pub fn is_permanent(&self) -> bool {
        matches!(self, FaultKind::StuckAt0 | FaultKind::StuckAt1)
    }

    /// Applies the fault to bit `bit` of `word`.
    ///
    /// # Errors
    ///
    /// Returns a [`navft_qformat::FormatError`] if `bit` is outside the word.
    pub fn apply(&self, word: QValue, bit: u8) -> Result<QValue, navft_qformat::FormatError> {
        match self {
            FaultKind::StuckAt0 => word.with_stuck_bit(bit, false),
            FaultKind::StuckAt1 => word.with_stuck_bit(bit, true),
            FaultKind::BitFlip => word.with_flipped_bit(bit),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::StuckAt0 => "stuck-at-0",
            FaultKind::StuckAt1 => "stuck-at-1",
            FaultKind::BitFlip => "bit-flip",
        };
        f.write_str(name)
    }
}

/// How long a *transient* fault remains visible during inference.
///
/// §4.1.2 of the paper distinguishes two transient modes: a flip in a read
/// register corrupts only the single decision step that reads it
/// (*Transient-1*), while a flip in memory corrupts every subsequent step of
/// the episode (*Transient-M*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransientScope {
    /// The corrupted value is consumed by a single action step only.
    SingleStep,
    /// The corrupted value persists in memory for the whole episode.
    #[default]
    WholeExecution,
}

impl fmt::Display for TransientScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TransientScope::SingleStep => "transient-1",
            TransientScope::WholeExecution => "transient-M",
        };
        f.write_str(name)
    }
}

/// A reusable fault-sampling recipe: the bit error rate, fault kind and
/// storage format of a fault population, without a concrete word count.
///
/// [`FaultMap`] binds a sampled pattern to a fixed buffer size; a spec is
/// the step before that — what a long-running server keeps per session to
/// draw a fresh transient pattern per request over whatever buffer the
/// request touches. [`FaultSpec::sample`] draws the map;
/// [`FaultSpec::strike`] samples and corrupts in one call.
///
/// # Examples
///
/// ```
/// use navft_fault::{FaultKind, FaultSpec};
/// use navft_qformat::QFormat;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let spec = FaultSpec::new(0.05, FaultKind::BitFlip, QFormat::Q4_11);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut buffer = vec![0.5f32; 64];
/// let hits = spec.strike(&mut buffer, &mut rng);
/// assert_eq!(hits, spec.faults_in(64));
/// assert!(buffer.iter().any(|&v| v != 0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability of any single stored bit being faulty.
    pub ber: f64,
    /// The physical fault mechanism.
    pub kind: FaultKind,
    /// The storage format of the afflicted buffer.
    pub format: QFormat,
}

impl FaultSpec {
    /// Builds a spec from a bit error rate, fault kind and storage format.
    pub fn new(ber: f64, kind: FaultKind, format: QFormat) -> FaultSpec {
        FaultSpec { ber, kind, format }
    }

    /// How many faulty bits this spec draws over `num_words` words —
    /// `round(ber · num_words · total_bits)`, the paper's BER model.
    pub fn faults_in(&self, num_words: usize) -> usize {
        let total_bits = num_words * usize::from(self.format.total_bits());
        (self.ber * total_bits as f64).round() as usize
    }

    /// Samples a concrete fault map over a buffer of `num_words` words.
    pub fn sample<R: Rng + ?Sized>(&self, num_words: usize, rng: &mut R) -> FaultMap {
        FaultMap::sample(num_words, self.format, self.ber, self.kind, rng)
    }

    /// Samples a fresh fault pattern over `words` and corrupts the buffer in
    /// place (any [`StoredWord`] representation). Returns the number of bit
    /// faults struck.
    pub fn strike<W: StoredWord, R: Rng + ?Sized>(&self, words: &mut [W], rng: &mut R) -> usize {
        let map = self.sample(words.len(), rng);
        map.corrupt(words, self.format);
        map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_is_permanent_and_flip_is_not() {
        assert!(FaultKind::StuckAt0.is_permanent());
        assert!(FaultKind::StuckAt1.is_permanent());
        assert!(!FaultKind::BitFlip.is_permanent());
    }

    #[test]
    fn apply_matches_semantics() {
        let fmt = QFormat::Q3_4;
        let word = QValue::quantize(1.0, fmt); // 0b0001_0000
        assert_eq!(FaultKind::StuckAt0.apply(word, 4).unwrap().to_f32(), 0.0);
        assert_eq!(FaultKind::StuckAt1.apply(word, 4).unwrap(), word);
        assert_eq!(FaultKind::BitFlip.apply(word, 4).unwrap().to_f32(), 0.0);
        assert_eq!(FaultKind::BitFlip.apply(word, 0).unwrap().to_f32(), 1.0625);
    }

    #[test]
    fn apply_rejects_bad_bit() {
        let word = QValue::quantize(0.0, QFormat::Q3_4);
        assert!(FaultKind::BitFlip.apply(word, 8).is_err());
    }

    #[test]
    fn display_names_match_paper_terms() {
        assert_eq!(FaultKind::StuckAt0.to_string(), "stuck-at-0");
        assert_eq!(FaultKind::StuckAt1.to_string(), "stuck-at-1");
        assert_eq!(FaultKind::BitFlip.to_string(), "bit-flip");
        assert_eq!(TransientScope::SingleStep.to_string(), "transient-1");
        assert_eq!(TransientScope::WholeExecution.to_string(), "transient-M");
    }

    #[test]
    fn bit_flip_applied_twice_is_an_involution() {
        // A single-event upset hitting the same (word, bit) location twice
        // restores the original word, for every representable word and bit.
        let fmt = QFormat::Q3_4;
        for raw in fmt.min_raw()..=fmt.max_raw() {
            let word = QValue::from_raw(raw, fmt);
            for bit in 0..fmt.total_bits() {
                let once = FaultKind::BitFlip.apply(word, bit).unwrap();
                assert_ne!(once, word, "a flip must change the word");
                let twice = FaultKind::BitFlip.apply(once, bit).unwrap();
                assert_eq!(twice, word, "raw {raw} bit {bit}");
            }
        }
    }

    #[test]
    fn spec_sampling_matches_the_map_sampler_and_counts_hits() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let spec = FaultSpec::new(0.02, FaultKind::BitFlip, QFormat::Q4_11);
        // The spec delegates to FaultMap::sample with its own parameters, so
        // the same seed draws the same pattern.
        let map = spec.sample(32, &mut SmallRng::seed_from_u64(3));
        let direct = FaultMap::sample(
            32,
            QFormat::Q4_11,
            0.02,
            FaultKind::BitFlip,
            &mut SmallRng::seed_from_u64(3),
        );
        assert_eq!(map.faults(), direct.faults());
        assert_eq!(map.len(), spec.faults_in(32));

        // strike() corrupts live raw words in place and reports the count.
        // Distinct positions can share a word, so count faulted words from
        // the map rather than assuming one word per bit fault.
        let mut words = vec![0i32; 32];
        let hits = spec.strike(&mut words, &mut SmallRng::seed_from_u64(3));
        assert_eq!(hits, map.len());
        let faulted_words: std::collections::HashSet<usize> =
            map.faults().iter().map(|f| f.word).collect();
        assert_eq!(words.iter().filter(|&&w| w != 0).count(), faulted_words.len());
    }

    #[test]
    fn all_lists_every_kind_once() {
        assert_eq!(FaultKind::ALL.len(), 3);
        assert!(FaultKind::ALL.contains(&FaultKind::StuckAt0));
        assert!(FaultKind::ALL.contains(&FaultKind::StuckAt1));
        assert!(FaultKind::ALL.contains(&FaultKind::BitFlip));
    }
}

use rand::seq::index::sample;
use rand::Rng;

use navft_qformat::{QFormat, QValue};

use crate::FaultKind;

/// A storage word the fault layer can corrupt in place: the glue between a
/// buffer's element type and the bit-level fault mechanisms.
///
/// Three representations ship:
///
/// * **`f32`** — a buffer that *models* Q-format storage: each fault
///   quantizes the value into the format, perturbs the stored word and
///   dequantizes the result back.
/// * **`i32`** — a buffer that *natively holds* raw two's-complement
///   Q-format words: each fault is a single integer operation on the live
///   word, with no round trip.
/// * **`i8`** — a buffer of live affine bytes (the `i8` inference backend):
///   each fault is a direct bit operation on the stored byte. The format's
///   numeric interpretation is irrelevant to an affine byte, so only its
///   role as a bit-width bound applies (bits ≥ 8 never land).
///
/// Every corrupt/enforce entry point of [`FaultMap`] and
/// [`crate::Injector`] is generic over this trait, so a new storage
/// representation (for a new inference backend) plugs into the whole fault
/// layer with one `impl`.
pub trait StoredWord: Copy {
    /// Applies one bit fault to this word, interpreting it in `format`.
    /// Returns the corrupted word, or `None` if the fault does not apply
    /// (e.g. a bit index outside the format's width).
    fn apply_fault(self, fault: &BitFault, format: QFormat) -> Option<Self>;
}

impl StoredWord for f32 {
    fn apply_fault(self, fault: &BitFault, format: QFormat) -> Option<f32> {
        let word = QValue::quantize(self, format);
        fault.kind.apply(word, fault.bit).ok().map(|corrupted| corrupted.to_f32())
    }
}

impl StoredWord for i32 {
    fn apply_fault(self, fault: &BitFault, format: QFormat) -> Option<i32> {
        fault.kind.apply(QValue::from_raw(self, format), fault.bit).ok().map(|c| c.raw())
    }
}

impl StoredWord for i8 {
    fn apply_fault(self, fault: &BitFault, _format: QFormat) -> Option<i8> {
        // Affine bytes have no binary point: the fault mechanisms act on the
        // raw byte directly, and the format only matters for sampling bit
        // positions (use an 8-bit format there).
        if fault.bit >= 8 {
            return None;
        }
        let mask = 1u8 << fault.bit;
        let byte = self as u8;
        let corrupted = match fault.kind {
            FaultKind::BitFlip => byte ^ mask,
            FaultKind::StuckAt0 => byte & !mask,
            FaultKind::StuckAt1 => byte | mask,
        };
        Some(corrupted as i8)
    }
}

/// A single bit-level fault: which word, which bit, which mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFault {
    /// Index of the affected word within the buffer.
    pub word: usize,
    /// Index of the affected bit within the word (0 = LSB).
    pub bit: u8,
    /// The fault mechanism.
    pub kind: FaultKind,
}

/// A concrete set of bit faults over a buffer of quantized words.
///
/// A fault map is sampled once from a bit error rate (the fraction of bits in
/// the buffer that are faulty) and can then be applied to the buffer —
/// transiently (bit flips, applied once) or persistently (stuck-at faults,
/// re-enforced on every access via [`FaultMap::enforce_f32`]).
///
/// # Examples
///
/// ```
/// use navft_fault::{FaultKind, FaultMap};
/// use navft_qformat::QFormat;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(42);
/// let map = FaultMap::sample(100, QFormat::Q3_4, 0.01, FaultKind::StuckAt1, &mut rng);
/// assert_eq!(map.len(), 8); // 1% of 100 words x 8 bits
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultMap {
    faults: Vec<BitFault>,
}

impl FaultMap {
    /// Creates an empty fault map (a fault-free run).
    pub fn new() -> FaultMap {
        FaultMap::default()
    }

    /// Creates a fault map from an explicit list of faults.
    pub fn from_faults(faults: Vec<BitFault>) -> FaultMap {
        FaultMap { faults }
    }

    /// Samples a fault map over a buffer of `num_words` words in `format`.
    ///
    /// The number of faulty bits is `round(ber * num_words * total_bits)`,
    /// drawn uniformly without replacement over all (word, bit) positions —
    /// the standard BER-parameterized fault model of the paper.
    pub fn sample<R: Rng + ?Sized>(
        num_words: usize,
        format: QFormat,
        ber: f64,
        kind: FaultKind,
        rng: &mut R,
    ) -> FaultMap {
        let word_bits = usize::from(format.total_bits());
        let total_bits = num_words * word_bits;
        if total_bits == 0 {
            return FaultMap::new();
        }
        let count = ((ber * total_bits as f64).round() as usize).min(total_bits);
        let faults = sample(rng, total_bits, count)
            .into_iter()
            .map(|flat| BitFault { word: flat / word_bits, bit: (flat % word_bits) as u8, kind })
            .collect();
        FaultMap { faults }
    }

    /// Samples exactly `count` faults over the buffer (used when the paper
    /// reports an absolute number of faults rather than a rate).
    pub fn sample_count<R: Rng + ?Sized>(
        num_words: usize,
        format: QFormat,
        count: usize,
        kind: FaultKind,
        rng: &mut R,
    ) -> FaultMap {
        let word_bits = usize::from(format.total_bits());
        let total_bits = num_words * word_bits;
        let count = count.min(total_bits);
        let faults = sample(rng, total_bits, count)
            .into_iter()
            .map(|flat| BitFault { word: flat / word_bits, bit: (flat % word_bits) as u8, kind })
            .collect();
        FaultMap { faults }
    }

    /// Number of faulty bits in the map.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the map contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The individual faults.
    pub fn faults(&self) -> &[BitFault] {
        &self.faults
    }

    /// Applies every fault to a buffer of quantized words.
    ///
    /// Faults whose word index falls outside the buffer are ignored (this
    /// makes a map sampled for a larger buffer safely applicable to a slice).
    pub fn apply(&self, words: &mut [QValue]) {
        for fault in &self.faults {
            if let Some(word) = words.get_mut(fault.word) {
                if let Ok(corrupted) = fault.kind.apply(*word, fault.bit) {
                    *word = corrupted;
                }
            }
        }
    }

    /// Applies every fault once to a buffer of any [`StoredWord`]
    /// representation (transient semantics): the single generic corruption
    /// entry point behind the per-representation convenience names.
    pub fn corrupt<W: StoredWord>(&self, words: &mut [W], format: QFormat) {
        self.corrupt_span(0, words, format);
    }

    /// Like [`FaultMap::corrupt`], but treats `words` as the window of the
    /// fault map's word space starting at word `first_word` (faults outside
    /// the window are ignored).
    ///
    /// This is how a map sampled over a whole network's concatenated weight
    /// space applies to one layer's buffer without materializing sliced maps.
    pub fn corrupt_span<W: StoredWord>(&self, first_word: usize, words: &mut [W], format: QFormat) {
        self.apply_span(first_word, words, format, false);
    }

    /// Re-enforces the *permanent* faults of the map on a buffer of any
    /// [`StoredWord`] representation.
    ///
    /// Transient bit flips are skipped: once flipped they do not re-assert
    /// themselves, whereas stuck-at bits override every write. Call this after
    /// each update of a buffer afflicted by permanent faults.
    pub fn enforce<W: StoredWord>(&self, words: &mut [W], format: QFormat) {
        self.enforce_span(0, words, format);
    }

    /// Window variant of [`FaultMap::enforce`] (see
    /// [`FaultMap::corrupt_span`]).
    pub fn enforce_span<W: StoredWord>(&self, first_word: usize, words: &mut [W], format: QFormat) {
        self.apply_span(first_word, words, format, true);
    }

    /// Applies every fault to an `f32` buffer through a quantize → corrupt →
    /// dequantize round trip in `format`.
    ///
    /// This models a buffer that physically stores `format` words: the
    /// faulty bits perturb the stored word and the accelerator consumes the
    /// dequantized result. Buffers that *natively* store Q-format words skip
    /// the round trip entirely via [`FaultMap::corrupt_raw`].
    pub fn corrupt_f32(&self, values: &mut [f32], format: QFormat) {
        self.corrupt_span(0, values, format);
    }

    /// Window variant of [`FaultMap::corrupt_f32`] (see
    /// [`FaultMap::corrupt_span`]).
    pub fn corrupt_f32_span(&self, first_word: usize, values: &mut [f32], format: QFormat) {
        self.corrupt_span(first_word, values, format);
    }

    /// [`FaultMap::enforce`] for `f32` buffers modelling Q-format storage.
    pub fn enforce_f32(&self, values: &mut [f32], format: QFormat) {
        self.enforce_span(0, values, format);
    }

    /// Window variant of [`FaultMap::enforce_f32`] (see
    /// [`FaultMap::corrupt_span`]).
    pub fn enforce_f32_span(&self, first_word: usize, values: &mut [f32], format: QFormat) {
        self.enforce_span(first_word, values, format);
    }

    /// Applies every fault directly to a buffer of live raw two's-complement
    /// `format` words — the native fixed-point backend's corruption path,
    /// where a bit flip or stuck-at is a single integer operation with no
    /// quantize → dequantize round trip.
    pub fn corrupt_raw(&self, words: &mut [i32], format: QFormat) {
        self.corrupt_span(0, words, format);
    }

    /// Window variant of [`FaultMap::corrupt_raw`] (see
    /// [`FaultMap::corrupt_span`]).
    pub fn corrupt_raw_span(&self, first_word: usize, words: &mut [i32], format: QFormat) {
        self.corrupt_span(first_word, words, format);
    }

    /// Re-enforces the *permanent* faults of the map on live raw words.
    pub fn enforce_raw(&self, words: &mut [i32], format: QFormat) {
        self.enforce_span(0, words, format);
    }

    /// Window variant of [`FaultMap::enforce_raw`].
    pub fn enforce_raw_span(&self, first_word: usize, words: &mut [i32], format: QFormat) {
        self.enforce_span(first_word, words, format);
    }

    fn apply_span<W: StoredWord>(
        &self,
        first_word: usize,
        words: &mut [W],
        format: QFormat,
        permanent_only: bool,
    ) {
        for fault in &self.faults {
            if permanent_only && !fault.kind.is_permanent() {
                continue;
            }
            let Some(index) = fault.word.checked_sub(first_word) else { continue };
            if let Some(word) = words.get_mut(index) {
                if let Some(corrupted) = word.apply_fault(fault, format) {
                    *word = corrupted;
                }
            }
        }
    }

    /// Whether the map contains at least one permanent (stuck-at) fault.
    pub fn has_permanent(&self) -> bool {
        self.faults.iter().any(|f| f.kind.is_permanent())
    }
}

impl FromIterator<BitFault> for FaultMap {
    fn from_iter<T: IntoIterator<Item = BitFault>>(iter: T) -> Self {
        FaultMap { faults: iter.into_iter().collect() }
    }
}

impl Extend<BitFault> for FaultMap {
    fn extend<T: IntoIterator<Item = BitFault>>(&mut self, iter: T) {
        self.faults.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_count_matches_ber() {
        let mut rng = SmallRng::seed_from_u64(1);
        let map = FaultMap::sample(1000, QFormat::Q3_4, 0.001, FaultKind::BitFlip, &mut rng);
        assert_eq!(map.len(), 8); // 0.1% of 8000 bits
        let map = FaultMap::sample(1000, QFormat::Q3_4, 0.0, FaultKind::BitFlip, &mut rng);
        assert!(map.is_empty());
    }

    #[test]
    fn sampled_positions_are_unique_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let map = FaultMap::sample(10, QFormat::Q3_4, 0.5, FaultKind::BitFlip, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for f in map.faults() {
            assert!(f.word < 10);
            assert!(f.bit < 8);
            assert!(seen.insert((f.word, f.bit)), "duplicate fault position");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let map_a = FaultMap::sample(
            64,
            QFormat::Q4_11,
            0.05,
            FaultKind::StuckAt0,
            &mut SmallRng::seed_from_u64(7),
        );
        let map_b = FaultMap::sample(
            64,
            QFormat::Q4_11,
            0.05,
            FaultKind::StuckAt0,
            &mut SmallRng::seed_from_u64(7),
        );
        assert_eq!(map_a, map_b);
    }

    #[test]
    fn corrupt_f32_changes_values_and_enforce_reasserts_stuck_bits() {
        let fmt = QFormat::Q3_4;
        let map =
            FaultMap::from_faults(vec![BitFault { word: 0, bit: 7, kind: FaultKind::StuckAt1 }]);
        let mut buf = vec![1.0f32, 2.0];
        map.corrupt_f32(&mut buf, fmt);
        assert!(buf[0] < 0.0, "sign bit stuck at 1 makes the value negative");
        assert_eq!(buf[1], 2.0);

        // A write "repairs" the value, then enforcement re-asserts the defect.
        buf[0] = 1.0;
        map.enforce_f32(&mut buf, fmt);
        assert!(buf[0] < 0.0);
    }

    #[test]
    fn enforce_skips_transient_flips() {
        let fmt = QFormat::Q3_4;
        let map =
            FaultMap::from_faults(vec![BitFault { word: 0, bit: 7, kind: FaultKind::BitFlip }]);
        let mut buf = vec![1.0f32];
        map.enforce_f32(&mut buf, fmt);
        assert_eq!(buf[0], 1.0);
        map.corrupt_f32(&mut buf, fmt);
        assert!(buf[0] < 0.0);
    }

    #[test]
    fn stuck_at_0_on_zero_bits_is_benign() {
        let fmt = QFormat::Q3_4;
        let map =
            FaultMap::from_faults(vec![BitFault { word: 0, bit: 6, kind: FaultKind::StuckAt0 }]);
        let mut buf = vec![0.5f32];
        map.corrupt_f32(&mut buf, fmt);
        assert_eq!(buf[0], 0.5);
    }

    #[test]
    fn out_of_range_words_are_ignored() {
        let map =
            FaultMap::from_faults(vec![BitFault { word: 10, bit: 0, kind: FaultKind::BitFlip }]);
        let mut buf = vec![1.0f32; 2];
        map.corrupt_f32(&mut buf, QFormat::Q3_4);
        assert_eq!(buf, vec![1.0, 1.0]);
    }

    #[test]
    fn apply_on_qvalues_matches_corrupt_on_f32() {
        let fmt = QFormat::Q4_11;
        let map =
            FaultMap::from_faults(vec![BitFault { word: 1, bit: 14, kind: FaultKind::BitFlip }]);
        let mut words: Vec<QValue> =
            [0.25f32, 0.75].iter().map(|&v| QValue::quantize(v, fmt)).collect();
        let mut floats = vec![0.25f32, 0.75];
        map.apply(&mut words);
        map.corrupt_f32(&mut floats, fmt);
        assert_eq!(words[1].to_f32(), floats[1]);
        assert_eq!(words[0].to_f32(), floats[0]);
    }

    #[test]
    fn corrupt_raw_flips_live_words_in_place() {
        let fmt = QFormat::Q3_4;
        let map = FaultMap::from_faults(vec![
            BitFault { word: 0, bit: 7, kind: FaultKind::BitFlip },
            BitFault { word: 1, bit: 0, kind: FaultKind::StuckAt1 },
        ]);
        let mut words = vec![16i32, 32]; // 1.0 and 2.0 in Q3_4
        map.corrupt_raw(&mut words, fmt);
        // Flipping bit 7 of raw 16 (0b0001_0000) gives 0b1001_0000 = -112.
        assert_eq!(words, vec![-112, 33]);
    }

    #[test]
    fn corrupt_raw_matches_corrupt_f32_on_grid_values() {
        let fmt = QFormat::Q4_11;
        let mut rng = SmallRng::seed_from_u64(9);
        let map = FaultMap::sample(32, fmt, 0.1, FaultKind::StuckAt1, &mut rng);
        let mut floats: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) * 0.25).collect();
        let mut raws: Vec<i32> = floats.iter().map(|&v| QValue::quantize(v, fmt).raw()).collect();
        map.corrupt_f32(&mut floats, fmt);
        map.corrupt_raw(&mut raws, fmt);
        let dequantized: Vec<f32> =
            raws.iter().map(|&r| QValue::from_raw(r, fmt).to_f32()).collect();
        assert_eq!(floats, dequantized);
    }

    #[test]
    fn corrupt_flips_live_bytes_on_i8_words() {
        let fmt = QFormat::Q3_4; // ignored by the i8 representation
        let map = FaultMap::from_faults(vec![
            BitFault { word: 0, bit: 7, kind: FaultKind::BitFlip },
            BitFault { word: 1, bit: 0, kind: FaultKind::StuckAt1 },
            BitFault { word: 2, bit: 1, kind: FaultKind::StuckAt0 },
        ]);
        let mut bytes = vec![16i8, 32, 7];
        map.corrupt(&mut bytes, fmt);
        // Flipping bit 7 of 0b0001_0000 gives 0b1001_0000 = -112; 32 gains
        // bit 0; 7 (0b111) loses bit 1.
        assert_eq!(bytes, vec![-112, 33, 5]);
    }

    #[test]
    fn i8_words_ignore_faults_beyond_their_eighth_bit() {
        let fault = BitFault { word: 0, bit: 8, kind: FaultKind::BitFlip };
        assert_eq!(42i8.apply_fault(&fault, QFormat::Q3_4), None);
        let in_range = BitFault { word: 0, bit: 6, kind: FaultKind::BitFlip };
        assert_eq!(1i8.apply_fault(&in_range, QFormat::Q3_4), Some(65));
    }

    #[test]
    fn span_application_rebases_and_ignores_outside_words() {
        let fmt = QFormat::Q3_4;
        let map = FaultMap::from_faults(vec![
            BitFault { word: 2, bit: 7, kind: FaultKind::BitFlip },
            BitFault { word: 9, bit: 7, kind: FaultKind::BitFlip },
        ]);
        // Window covering words 2..5: only word 2 lands, at local index 0.
        let mut floats = vec![1.0f32; 3];
        map.corrupt_f32_span(2, &mut floats, fmt);
        assert!(floats[0] < 0.0);
        assert_eq!(&floats[1..], &[1.0, 1.0]);
        let mut raws = vec![16i32; 3];
        map.corrupt_raw_span(2, &mut raws, fmt);
        assert_eq!(raws, vec![-112, 16, 16]);
    }

    #[test]
    fn enforce_raw_reasserts_only_permanent_faults() {
        let fmt = QFormat::Q3_4;
        let map = FaultMap::from_faults(vec![
            BitFault { word: 0, bit: 6, kind: FaultKind::StuckAt1 },
            BitFault { word: 1, bit: 6, kind: FaultKind::BitFlip },
        ]);
        let mut words = vec![0i32, 0];
        map.enforce_raw(&mut words, fmt);
        assert_eq!(words, vec![64, 0]);
    }

    #[test]
    fn collect_and_extend() {
        let mut map: FaultMap =
            vec![BitFault { word: 0, bit: 0, kind: FaultKind::BitFlip }].into_iter().collect();
        map.extend(vec![BitFault { word: 1, bit: 1, kind: FaultKind::StuckAt0 }]);
        assert_eq!(map.len(), 2);
        assert!(map.has_permanent());
    }

    #[test]
    fn ber_one_faults_every_bit() {
        let mut rng = SmallRng::seed_from_u64(3);
        let map = FaultMap::sample(4, QFormat::Q3_4, 1.0, FaultKind::BitFlip, &mut rng);
        assert_eq!(map.len(), 32);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn sampled_map_size_tracks_ber(
            words in 1usize..200,
            ber in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let fmt = QFormat::Q3_4;
            let mut rng = SmallRng::seed_from_u64(seed);
            let map = FaultMap::sample(words, fmt, ber, FaultKind::BitFlip, &mut rng);
            let expected = (ber * (words * 8) as f64).round() as usize;
            prop_assert_eq!(map.len(), expected.min(words * 8));
        }

        #[test]
        fn double_corruption_with_flips_is_identity(seed in 0u64..500) {
            // Applying the same bit-flip map twice restores the original buffer
            // (for values that are exactly representable).
            let fmt = QFormat::Q3_4;
            let mut rng = SmallRng::seed_from_u64(seed);
            let map = FaultMap::sample(32, fmt, 0.1, FaultKind::BitFlip, &mut rng);
            let original: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) * 0.25).collect();
            let mut buf = original.clone();
            map.corrupt_f32(&mut buf, fmt);
            map.corrupt_f32(&mut buf, fmt);
            prop_assert_eq!(buf, original);
        }

        #[test]
        fn stuck_at_application_is_idempotent(seed in 0u64..500) {
            let fmt = QFormat::Q4_11;
            let mut rng = SmallRng::seed_from_u64(seed);
            let map = FaultMap::sample(32, fmt, 0.1, FaultKind::StuckAt1, &mut rng);
            let mut once: Vec<f32> = (0..32).map(|i| i as f32 * 0.01).collect();
            map.corrupt_f32(&mut once, fmt);
            let mut twice = once.clone();
            map.corrupt_f32(&mut twice, fmt);
            prop_assert_eq!(once, twice);
        }
    }
}

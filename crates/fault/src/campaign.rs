//! Fault-injection campaign machinery: repetitions, seeding, scheduling and
//! statistics.
//!
//! The paper repeats every fault-injection configuration many times (1000
//! repetitions for Grid World, 100 for the drone task) and reports the mean
//! outcome. [`CampaignConfig`] captures the repetition count and base seed,
//! [`run`] executes a closure once per repetition with a derived deterministic
//! seed, and [`Summary`] provides the aggregate statistics (mean, standard
//! deviation, 95 % confidence interval) accumulated in one pass (Welford),
//! so paper-scale campaigns never hold every sample in memory.
//!
//! For whole evaluation runs — many cells, each with many repetitions —
//! [`run_cells`] is a single work-stealing scheduler over *all* (cell,
//! repetition) trials: workers pull the next global trial off one shared
//! atomic counter, so a run saturates every core end to end instead of
//! hitting a fork-join barrier per cell. Results are bit-identical to serial
//! execution by construction: every trial's seed is derived only from its
//! cell's base seed and repetition index, and each cell's values are handed
//! back in repetition order once the cell completes.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Configuration of a repetition campaign.
///
/// # Examples
///
/// ```
/// use navft_fault::campaign::{run, CampaignConfig};
///
/// let config = CampaignConfig::new(100, 42);
/// let summary = run(&config, |seed, _rep| (seed % 7) as f64);
/// assert_eq!(summary.count(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CampaignConfig {
    repetitions: usize,
    base_seed: u64,
}

impl CampaignConfig {
    /// A campaign of `repetitions` runs seeded from `base_seed`.
    pub fn new(repetitions: usize, base_seed: u64) -> CampaignConfig {
        CampaignConfig { repetitions, base_seed }
    }

    /// Number of repetitions.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// The base seed from which per-repetition seeds are derived.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The deterministic seed for repetition `rep`.
    ///
    /// Seeds are spread with a SplitMix64-style mix so that neighbouring
    /// repetitions do not share correlated random streams.
    pub fn seed_for(&self, rep: usize) -> u64 {
        let mut z =
            self.base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rep as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for CampaignConfig {
    /// 100 repetitions with base seed 0.
    fn default() -> Self {
        CampaignConfig::new(100, 0)
    }
}

/// Summary statistics of a campaign metric, accumulated in one pass.
///
/// Mean and variance use Welford's online algorithm, so summarizing a
/// 1000-repetition cell costs O(1) memory. The raw per-repetition values are
/// *not* retained unless the summary was built through the opt-in
/// [`Summary::from_values`] path (used by the small serial campaigns whose
/// tests compare full value vectors).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    values: Option<Vec<f64>>,
}

impl Summary {
    /// An empty streaming summary that does not retain raw values.
    pub fn streaming() -> Summary {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: 0.0, max: 0.0, values: None }
    }

    /// Builds a summary from raw per-repetition values, retaining them.
    pub fn from_values(values: Vec<f64>) -> Summary {
        let mut summary = Summary::streaming();
        for &v in &values {
            summary.push(v);
        }
        summary.values = Some(values);
        summary
    }

    /// Builds a streaming summary (no retained values) from an iterator.
    pub fn from_samples(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut summary = Summary::streaming();
        for v in values {
            summary.push(v);
        }
        summary
    }

    /// Reconstructs a summary from its stored moments (the artifact
    /// deserialization path). The raw values are not recoverable.
    pub fn from_moments(count: usize, mean: f64, m2: f64, min: f64, max: f64) -> Summary {
        Summary { count, mean, m2, min, max, values: None }
    }

    /// Folds one more observation into the summary.
    pub fn push(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        if let Some(values) = &mut self.values {
            values.push(value);
        }
    }

    /// Number of repetitions summarized.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The raw per-repetition values, if this summary retains them
    /// (only the [`Summary::from_values`] path does).
    pub fn values(&self) -> Option<&[f64]> {
        self.values.as_deref()
    }

    /// Mean of the metric (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The accumulated sum of squared deviations from the mean (Welford's
    /// `M2`). Exposed so artifacts can round-trip a summary exactly; use
    /// [`Summary::std_dev`] for the statistic.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Sample standard deviation (0 for fewer than two repetitions).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        (self.m2 / (self.count - 1) as f64).sqrt()
    }

    /// Minimum observed value (0 for an empty summary).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observed value (0 for an empty summary).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Half-width of the 95 % confidence interval of the mean (normal
    /// approximation, as used by the paper's 1000-repetition campaigns).
    pub fn confidence_95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.count as f64).sqrt()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.4} ± {:.4} (n = {}, σ = {:.4})",
            self.mean(),
            self.confidence_95(),
            self.count(),
            self.std_dev()
        )
    }
}

/// Runs `experiment` once per repetition and summarizes the returned metric.
///
/// The closure receives the derived deterministic seed and the repetition
/// index; campaigns with the same configuration therefore produce identical
/// results run-to-run. The returned summary retains the raw values.
pub fn run<F>(config: &CampaignConfig, mut experiment: F) -> Summary
where
    F: FnMut(u64, usize) -> f64,
{
    let values =
        (0..config.repetitions()).map(|rep| experiment(config.seed_for(rep), rep)).collect();
    Summary::from_values(values)
}

/// Runs `experiment` once per repetition across `threads` worker threads.
///
/// Results are returned in repetition order regardless of scheduling, so the
/// summary is identical to the serial [`run`]. This is a one-cell special
/// case of [`run_cells`].
pub fn run_parallel<F>(config: &CampaignConfig, threads: usize, experiment: F) -> Summary
where
    F: Fn(u64, usize) -> f64 + Sync,
{
    let cells = [CellPlan { repetitions: config.repetitions(), base_seed: config.base_seed() }];
    let mut values = Vec::new();
    run_cells(
        &cells,
        threads,
        |_, seed, rep| vec![experiment(seed, rep)],
        |_, per_rep| {
            values = per_rep.into_iter().map(|mut v| v.remove(0)).collect();
        },
    );
    Summary::from_values(values)
}

/// One schedulable campaign cell: how many repetitions to run and the base
/// seed its per-repetition seeds are derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellPlan {
    /// Number of repetitions of this cell.
    pub repetitions: usize,
    /// Base seed; repetition `rep` runs with
    /// `CampaignConfig::new(repetitions, base_seed).seed_for(rep)`.
    pub base_seed: u64,
}

/// Executes every (cell, repetition) trial of `cells` across `threads`
/// work-stealing workers and hands each completed cell's per-repetition
/// metric vectors — in repetition order — to `on_cell_done`.
///
/// * `trial(cell_index, seed, rep)` must be a pure function of its arguments
///   (plus whatever immutable state it captures): the scheduler guarantees
///   the same seeds regardless of thread count, so results are bit-identical
///   to a serial run by construction.
/// * `on_cell_done(cell_index, per_rep)` runs on the calling thread, in cell
///   *completion* order (nondeterministic when `threads > 1`); callers that
///   need deterministic output must order by `cell_index` themselves.
/// * A trial may return several metrics; all repetitions of a cell must
///   return the same number.
///
/// Unlike a per-cell fork-join, one shared atomic counter spans the whole
/// run, so slow high-BER cells cannot straggle while other cores sit idle.
/// Memory is bounded: only the in-flight cells' per-repetition buffers are
/// alive at any moment.
pub fn run_cells<F, C>(cells: &[CellPlan], threads: usize, trial: F, on_cell_done: C)
where
    F: Fn(usize, u64, usize) -> Vec<f64> + Sync,
    C: FnMut(usize, Vec<Vec<f64>>),
{
    run_cells_with(cells, threads, (), |cell, seed, rep, ()| trial(cell, seed, rep), on_cell_done);
}

/// [`run_cells`] with an explicit per-trial execution context.
///
/// `ctx` is handed to every trial verbatim — the campaign layer treats it as
/// an opaque `Copy` value. Callers use it to thread configuration that must
/// compose with trial-level parallelism (e.g. an engine config whose
/// in-engine batch sharding multiplies with the scheduler's `threads`)
/// through the scheduler without smuggling it through process-wide state.
/// Seeding, scheduling and result ordering are exactly those of
/// [`run_cells`]; `ctx` must not influence trial results (it may only steer
/// *how* they are computed), or thread-count invariance is lost.
pub fn run_cells_with<X, F, C>(
    cells: &[CellPlan],
    threads: usize,
    ctx: X,
    trial: F,
    mut on_cell_done: C,
) where
    X: Copy + Send + Sync,
    F: Fn(usize, u64, usize, X) -> Vec<f64> + Sync,
    C: FnMut(usize, Vec<Vec<f64>>),
{
    let total: usize = cells.iter().map(|c| c.repetitions).sum();
    if threads <= 1 || total <= 1 {
        for (index, cell) in cells.iter().enumerate() {
            let config = CampaignConfig::new(cell.repetitions, cell.base_seed);
            let per_rep: Vec<Vec<f64>> = (0..cell.repetitions)
                .map(|rep| trial(index, config.seed_for(rep), rep, ctx))
                .collect();
            on_cell_done(index, per_rep);
        }
        return;
    }

    // starts[i] is the first global trial index of cell i; starts[n] == total.
    let mut starts = Vec::with_capacity(cells.len() + 1);
    let mut acc = 0usize;
    for cell in cells {
        starts.push(acc);
        acc += cell.repetitions;
    }
    starts.push(acc);

    let next = AtomicUsize::new(0);
    let (sender, receiver) = mpsc::channel::<(usize, usize, Vec<f64>)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(total) {
            let sender = sender.clone();
            let starts = &starts;
            let next = &next;
            let trial = &trial;
            scope.spawn(move || loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= total {
                    break;
                }
                // The last cell whose start is <= t owns this trial (cells
                // with zero repetitions contribute duplicate starts and are
                // skipped over by taking the last).
                let cell = starts.partition_point(|&s| s <= t) - 1;
                let rep = t - starts[cell];
                let seed = CampaignConfig::new(cells[cell].repetitions, cells[cell].base_seed)
                    .seed_for(rep);
                let value = trial(cell, seed, rep, ctx);
                if sender.send((cell, rep, value)).is_err() {
                    break;
                }
            });
        }
        drop(sender);

        // Collect on the calling thread; a cell is done once all its
        // repetitions arrived, and its buffer is released immediately.
        let mut slots: Vec<Vec<Option<Vec<f64>>>> =
            cells.iter().map(|c| vec![None; c.repetitions]).collect();
        let mut remaining: Vec<usize> = cells.iter().map(|c| c.repetitions).collect();
        for (index, cell) in cells.iter().enumerate() {
            if cell.repetitions == 0 {
                on_cell_done(index, Vec::new());
            }
        }
        for (cell, rep, value) in receiver {
            slots[cell][rep] = Some(value);
            remaining[cell] -= 1;
            if remaining[cell] == 0 {
                let per_rep =
                    slots[cell].drain(..).map(|v| v.expect("every repetition arrived")).collect();
                on_cell_done(cell, per_rep);
            }
        }
    });
}

/// Folds per-repetition metric vectors (as delivered by [`run_cells`]) into
/// one streaming [`Summary`] per metric, accumulating in repetition order so
/// the statistics are independent of scheduling.
///
/// # Panics
///
/// Panics if repetitions disagree on the number of metrics.
pub fn summarize_metrics(per_rep: &[Vec<f64>]) -> Vec<Summary> {
    let metrics = per_rep.first().map(|v| v.len()).unwrap_or(0);
    let mut summaries = vec![Summary::streaming(); metrics];
    for rep in per_rep {
        assert_eq!(rep.len(), metrics, "every repetition must return the same metric count");
        for (summary, &value) in summaries.iter_mut().zip(rep) {
            summary.push(value);
        }
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let c = CampaignConfig::new(10, 99);
        assert_eq!(c.seed_for(3), c.seed_for(3));
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|r| c.seed_for(r)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn different_base_seeds_give_different_streams() {
        let a = CampaignConfig::new(10, 1);
        let b = CampaignConfig::new(10, 2);
        assert_ne!(a.seed_for(0), b.seed_for(0));
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.std_dev() - 1.290_994_4).abs() < 1e-6);
        assert!(s.confidence_95() > 0.0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.values(), Some(&[1.0, 2.0, 3.0, 4.0][..]));
    }

    #[test]
    fn streaming_summary_matches_recorded_statistics() {
        let values = vec![3.5, -1.0, 0.25, 8.0, 8.0, -2.5];
        let recorded = Summary::from_values(values.clone());
        let streamed = Summary::from_samples(values);
        assert_eq!(streamed.values(), None);
        assert_eq!(streamed.count(), recorded.count());
        assert_eq!(streamed.mean(), recorded.mean());
        assert_eq!(streamed.std_dev(), recorded.std_dev());
        assert_eq!(streamed.min(), recorded.min());
        assert_eq!(streamed.max(), recorded.max());
    }

    #[test]
    fn moments_round_trip_reconstructs_statistics() {
        let s = Summary::from_samples([1.0, 4.0, 9.0]);
        let back = Summary::from_moments(s.count(), s.mean(), s.m2(), s.min(), s.max());
        assert_eq!(back.mean(), s.mean());
        assert_eq!(back.std_dev(), s.std_dev());
        assert_eq!(back.min(), s.min());
        assert_eq!(back.max(), s.max());
        assert_eq!(back.values(), None);
    }

    #[test]
    fn empty_and_singleton_summaries_are_well_behaved() {
        let empty = Summary::from_values(vec![]);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.confidence_95(), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);
        let one = Summary::from_values(vec![5.0]);
        assert_eq!(one.mean(), 5.0);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    fn run_passes_derived_seeds_in_order() {
        let config = CampaignConfig::new(5, 7);
        let mut seen = Vec::new();
        let summary = run(&config, |seed, rep| {
            seen.push((seed, rep));
            rep as f64
        });
        assert_eq!(summary.values(), Some(&[0.0, 1.0, 2.0, 3.0, 4.0][..]));
        for (i, (seed, rep)) in seen.iter().enumerate() {
            assert_eq!(*rep, i);
            assert_eq!(*seed, config.seed_for(i));
        }
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let config = CampaignConfig::new(37, 11);
        let f = |seed: u64, rep: usize| (seed % 101) as f64 + rep as f64;
        let serial = run(&config, f);
        let parallel = run_parallel(&config, 4, f);
        assert_eq!(serial.values(), parallel.values());
    }

    #[test]
    fn parallel_run_with_one_thread_is_serial() {
        let config = CampaignConfig::new(5, 0);
        let summary = run_parallel(&config, 1, |_, rep| rep as f64);
        assert_eq!(summary.values(), Some(&[0.0, 1.0, 2.0, 3.0, 4.0][..]));
    }

    #[test]
    fn display_shows_mean_and_count() {
        let s = Summary::from_values(vec![1.0, 1.0]);
        let text = s.to_string();
        assert!(text.contains("mean 1.0000"));
        assert!(text.contains("n = 2"));
    }

    #[test]
    fn default_config_is_100_reps() {
        assert_eq!(CampaignConfig::default().repetitions(), 100);
    }

    fn collect_cells(cells: &[CellPlan], threads: usize) -> Vec<(usize, Vec<Vec<f64>>)> {
        let mut out = Vec::new();
        run_cells(
            cells,
            threads,
            |cell, seed, rep| vec![(seed % 997) as f64, (cell + rep) as f64],
            |cell, per_rep| out.push((cell, per_rep)),
        );
        out.sort_by_key(|(cell, _)| *cell);
        out
    }

    #[test]
    fn run_cells_is_thread_count_invariant() {
        let cells = [
            CellPlan { repetitions: 7, base_seed: 1 },
            CellPlan { repetitions: 1, base_seed: 2 },
            CellPlan { repetitions: 13, base_seed: 3 },
            CellPlan { repetitions: 4, base_seed: 1 },
        ];
        let serial = collect_cells(&cells, 1);
        for threads in [2, 3, 8] {
            assert_eq!(collect_cells(&cells, threads), serial, "threads = {threads}");
        }
        // Every cell completed with its full repetition count, in rep order.
        assert_eq!(serial.len(), cells.len());
        for ((index, per_rep), cell) in serial.iter().zip(&cells) {
            assert_eq!(per_rep.len(), cell.repetitions);
            let config = CampaignConfig::new(cell.repetitions, cell.base_seed);
            for (rep, metrics) in per_rep.iter().enumerate() {
                assert_eq!(metrics[0], (config.seed_for(rep) % 997) as f64);
                assert_eq!(metrics[1], (index + rep) as f64);
            }
        }
    }

    #[test]
    fn run_cells_with_hands_the_context_to_every_trial() {
        let cells =
            [CellPlan { repetitions: 5, base_seed: 4 }, CellPlan { repetitions: 9, base_seed: 5 }];
        let collect = |threads: usize| {
            let mut out = Vec::new();
            run_cells_with(
                &cells,
                threads,
                7usize,
                |cell, seed, rep, ctx| {
                    assert_eq!(ctx, 7);
                    vec![(seed % 991) as f64 + (cell * 100 + rep) as f64]
                },
                |cell, per_rep| out.push((cell, per_rep)),
            );
            out.sort_by_key(|(cell, _)| *cell);
            out
        };
        let serial = collect(1);
        assert_eq!(serial[0].1.len(), 5);
        assert_eq!(serial[1].1.len(), 9);
        for threads in [2, 8] {
            assert_eq!(collect(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn run_cells_handles_empty_and_zero_rep_cells() {
        let mut done = Vec::new();
        run_cells(&[], 4, |_, _, _| vec![0.0], |cell, _| done.push(cell));
        assert!(done.is_empty());

        let cells = [
            CellPlan { repetitions: 0, base_seed: 0 },
            CellPlan { repetitions: 3, base_seed: 9 },
            CellPlan { repetitions: 0, base_seed: 0 },
        ];
        let mut outcomes = Vec::new();
        run_cells(
            &cells,
            4,
            |_, _, rep| vec![rep as f64],
            |cell, per_rep| {
                outcomes.push((cell, per_rep.len()));
            },
        );
        outcomes.sort_unstable();
        assert_eq!(outcomes, vec![(0, 0), (1, 3), (2, 0)]);
    }

    #[test]
    fn summarize_metrics_folds_in_repetition_order() {
        let per_rep = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let summaries = summarize_metrics(&per_rep);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].mean(), 2.0);
        assert_eq!(summaries[1].mean(), 20.0);
        assert_eq!(summaries[0].count(), 3);
        assert_eq!(summaries[1].max(), 30.0);
        assert!(summarize_metrics(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "same metric count")]
    fn summarize_metrics_rejects_ragged_repetitions() {
        let _ = summarize_metrics(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

//! Fault-injection campaign machinery: repetitions, seeding and statistics.
//!
//! The paper repeats every fault-injection configuration many times (1000
//! repetitions for Grid World, 100 for the drone task) and reports the mean
//! outcome. [`CampaignConfig`] captures the repetition count and base seed,
//! [`run`] executes a closure once per repetition with a derived deterministic
//! seed, and [`Summary`] provides the aggregate statistics (mean, standard
//! deviation, 95 % confidence interval).

use std::fmt;

/// Configuration of a repetition campaign.
///
/// # Examples
///
/// ```
/// use navft_fault::campaign::{run, CampaignConfig};
///
/// let config = CampaignConfig::new(100, 42);
/// let summary = run(&config, |seed, _rep| (seed % 7) as f64);
/// assert_eq!(summary.count(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CampaignConfig {
    repetitions: usize,
    base_seed: u64,
}

impl CampaignConfig {
    /// A campaign of `repetitions` runs seeded from `base_seed`.
    pub fn new(repetitions: usize, base_seed: u64) -> CampaignConfig {
        CampaignConfig { repetitions, base_seed }
    }

    /// Number of repetitions.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// The base seed from which per-repetition seeds are derived.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The deterministic seed for repetition `rep`.
    ///
    /// Seeds are spread with a SplitMix64-style mix so that neighbouring
    /// repetitions do not share correlated random streams.
    pub fn seed_for(&self, rep: usize) -> u64 {
        let mut z =
            self.base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rep as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for CampaignConfig {
    /// 100 repetitions with base seed 0.
    fn default() -> Self {
        CampaignConfig::new(100, 0)
    }
}

/// Summary statistics of a campaign metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Builds a summary from raw per-repetition values.
    pub fn from_values(values: Vec<f64>) -> Summary {
        Summary { values }
    }

    /// Number of repetitions summarized.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// The raw per-repetition values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean of the metric (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sample standard deviation (0 for fewer than two repetitions).
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// Minimum observed value (0 for an empty summary).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum observed value (0 for an empty summary).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Half-width of the 95 % confidence interval of the mean (normal
    /// approximation, as used by the paper's 1000-repetition campaigns).
    pub fn confidence_95(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.values.len() as f64).sqrt()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.4} ± {:.4} (n = {}, σ = {:.4})",
            self.mean(),
            self.confidence_95(),
            self.count(),
            self.std_dev()
        )
    }
}

/// Runs `experiment` once per repetition and summarizes the returned metric.
///
/// The closure receives the derived deterministic seed and the repetition
/// index; campaigns with the same configuration therefore produce identical
/// results run-to-run.
pub fn run<F>(config: &CampaignConfig, mut experiment: F) -> Summary
where
    F: FnMut(u64, usize) -> f64,
{
    let values =
        (0..config.repetitions()).map(|rep| experiment(config.seed_for(rep), rep)).collect();
    Summary::from_values(values)
}

/// Runs `experiment` once per repetition across `threads` worker threads.
///
/// Results are returned in repetition order regardless of scheduling, so the
/// summary is identical to the serial [`run`].
pub fn run_parallel<F>(config: &CampaignConfig, threads: usize, experiment: F) -> Summary
where
    F: Fn(u64, usize) -> f64 + Sync,
{
    let reps = config.repetitions();
    if threads <= 1 || reps <= 1 {
        let mut values = Vec::with_capacity(reps);
        for rep in 0..reps {
            values.push(experiment(config.seed_for(rep), rep));
        }
        return Summary::from_values(values);
    }
    let threads = threads.min(reps);
    let mut values = vec![0.0f64; reps];
    std::thread::scope(|scope| {
        let chunks: Vec<(usize, &mut [f64])> = {
            let mut remaining: &mut [f64] = &mut values;
            let mut start = 0;
            let chunk = reps.div_ceil(threads);
            let mut out = Vec::new();
            while !remaining.is_empty() {
                let take = chunk.min(remaining.len());
                let (head, tail) = remaining.split_at_mut(take);
                out.push((start, head));
                start += take;
                remaining = tail;
            }
            out
        };
        for (start, slot) in chunks {
            let experiment = &experiment;
            scope.spawn(move || {
                for (offset, out) in slot.iter_mut().enumerate() {
                    let rep = start + offset;
                    *out = experiment(config.seed_for(rep), rep);
                }
            });
        }
    });
    Summary::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let c = CampaignConfig::new(10, 99);
        assert_eq!(c.seed_for(3), c.seed_for(3));
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|r| c.seed_for(r)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn different_base_seeds_give_different_streams() {
        let a = CampaignConfig::new(10, 1);
        let b = CampaignConfig::new(10, 2);
        assert_ne!(a.seed_for(0), b.seed_for(0));
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.std_dev() - 1.290_994_4).abs() < 1e-6);
        assert!(s.confidence_95() > 0.0);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn empty_and_singleton_summaries_are_well_behaved() {
        let empty = Summary::from_values(vec![]);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.confidence_95(), 0.0);
        let one = Summary::from_values(vec![5.0]);
        assert_eq!(one.mean(), 5.0);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    fn run_passes_derived_seeds_in_order() {
        let config = CampaignConfig::new(5, 7);
        let mut seen = Vec::new();
        let summary = run(&config, |seed, rep| {
            seen.push((seed, rep));
            rep as f64
        });
        assert_eq!(summary.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        for (i, (seed, rep)) in seen.iter().enumerate() {
            assert_eq!(*rep, i);
            assert_eq!(*seed, config.seed_for(i));
        }
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let config = CampaignConfig::new(37, 11);
        let f = |seed: u64, rep: usize| (seed % 101) as f64 + rep as f64;
        let serial = run(&config, f);
        let parallel = run_parallel(&config, 4, f);
        assert_eq!(serial.values(), parallel.values());
    }

    #[test]
    fn parallel_run_with_one_thread_is_serial() {
        let config = CampaignConfig::new(5, 0);
        let summary = run_parallel(&config, 1, |_, rep| rep as f64);
        assert_eq!(summary.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn display_shows_mean_and_count() {
        let s = Summary::from_values(vec![1.0, 1.0]);
        let text = s.to_string();
        assert!(text.contains("mean 1.0000"));
        assert!(text.contains("n = 2"));
    }

    #[test]
    fn default_config_is_100_reps() {
        assert_eq!(CampaignConfig::default().repetitions(), 100);
    }
}

use std::fmt;

use crate::FormatError;

/// A signed fixed-point format `Q(1, int, frac)`: one sign bit, `int` integer
/// bits and `frac` fractional bits, stored in two's complement.
///
/// The total word width is `1 + int + frac` bits and must be between 2 and 32.
/// Values span `[-2^int, 2^int - 2^-frac]` with a resolution of `2^-frac`.
///
/// The paper evaluates three 16-bit formats for the drone policy network
/// (Fig. 7e) — [`QFormat::Q4_11`], [`QFormat::Q7_8`], [`QFormat::Q10_5`] — and
/// an 8-bit format for Grid World policies, which we model as
/// [`QFormat::Q3_4`] (range `[-8, 7.9375]`, matching the value histograms in
/// Fig. 2b/2d).
///
/// # Examples
///
/// ```
/// use navft_qformat::QFormat;
///
/// let fmt = QFormat::Q4_11;
/// assert_eq!(fmt.total_bits(), 16);
/// assert_eq!(fmt.max_value(), 16.0 - fmt.resolution());
/// assert_eq!(fmt.min_value(), -16.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    int_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// The 16-bit `Q(1,4,11)` format: range `[-16, 16)`, resolution `2^-11`.
    ///
    /// The narrowest of the three drone-policy formats in Fig. 7e and the most
    /// fault-resilient one because its integer bits only cover the range the
    /// trained weights actually use.
    pub const Q4_11: QFormat = QFormat { int_bits: 4, frac_bits: 11 };

    /// The 16-bit `Q(1,7,8)` format: range `[-128, 128)`, resolution `2^-8`.
    pub const Q7_8: QFormat = QFormat { int_bits: 7, frac_bits: 8 };

    /// The 16-bit `Q(1,10,5)` format: range `[-1024, 1024)`, resolution `2^-5`.
    ///
    /// The widest-range format in Fig. 7e; a flipped MSB produces the largest
    /// deviation, which is why it is the least resilient.
    pub const Q10_5: QFormat = QFormat { int_bits: 10, frac_bits: 5 };

    /// The 8-bit `Q(1,3,4)` format: range `[-8, 8)`, resolution `2^-4`.
    ///
    /// Used for the 8-bit quantized Grid World policies (tabular values and
    /// MLP weights); its range matches the value histograms of Fig. 2b/2d
    /// (tabular minimum −8, maximum 7.625).
    pub const Q3_4: QFormat = QFormat { int_bits: 3, frac_bits: 4 };

    /// The 8-bit `Q(1,2,5)` format: range `[-4, 4)`, resolution `2^-5`.
    ///
    /// An extra-narrow format used by the data-type ablation extension.
    pub const Q2_5: QFormat = QFormat { int_bits: 2, frac_bits: 5 };

    /// The 16-bit `Q(1,2,13)` format used by the extended data-type ablation.
    pub const Q2_13: QFormat = QFormat { int_bits: 2, frac_bits: 13 };

    /// Creates a format with `int_bits` integer bits and `frac_bits`
    /// fractional bits (plus the implicit sign bit).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidFormat`] if the total width
    /// `1 + int_bits + frac_bits` is larger than 32 bits or smaller than 2.
    ///
    /// # Examples
    ///
    /// ```
    /// use navft_qformat::QFormat;
    /// # fn main() -> Result<(), navft_qformat::FormatError> {
    /// let fmt = QFormat::new(7, 8)?;
    /// assert_eq!(fmt, QFormat::Q7_8);
    /// assert!(QFormat::new(40, 0).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(int_bits: u8, frac_bits: u8) -> Result<QFormat, FormatError> {
        let total = 1u16 + u16::from(int_bits) + u16::from(frac_bits);
        if !(2..=32).contains(&total) {
            return Err(FormatError::InvalidFormat { int_bits, frac_bits });
        }
        Ok(QFormat { int_bits, frac_bits })
    }

    /// Number of integer bits (excluding the sign bit).
    #[inline]
    pub fn int_bits(&self) -> u8 {
        self.int_bits
    }

    /// Number of fractional bits.
    #[inline]
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Total word width in bits, including the sign bit.
    #[inline]
    pub fn total_bits(&self) -> u8 {
        1 + self.int_bits + self.frac_bits
    }

    /// The smallest positive increment representable in this format,
    /// `2^-frac_bits`.
    #[inline]
    pub fn resolution(&self) -> f32 {
        (2.0f32).powi(-i32::from(self.frac_bits))
    }

    /// The largest representable value, `2^int_bits - 2^-frac_bits`.
    #[inline]
    pub fn max_value(&self) -> f32 {
        (2.0f32).powi(i32::from(self.int_bits)) - self.resolution()
    }

    /// The smallest (most negative) representable value, `-2^int_bits`.
    #[inline]
    pub fn min_value(&self) -> f32 {
        -(2.0f32).powi(i32::from(self.int_bits))
    }

    /// The raw two's-complement integer corresponding to [`max_value`].
    ///
    /// [`max_value`]: QFormat::max_value
    #[inline]
    pub fn max_raw(&self) -> i32 {
        // Unsigned arithmetic: at the full 32-bit width `1 << 31` has no
        // signed representation, but `(1u32 << 31) - 1` is `i32::MAX`.
        ((1u32 << (self.total_bits() - 1)) - 1) as i32
    }

    /// The raw two's-complement integer corresponding to [`min_value`].
    ///
    /// [`min_value`]: QFormat::min_value
    #[inline]
    pub fn min_raw(&self) -> i32 {
        // `-(1 << (total - 1))` overflows at the full 32-bit width; the
        // two's-complement identity below is total for every valid format.
        -self.max_raw() - 1
    }

    /// Mask covering the sign bit and the integer bits of the word.
    ///
    /// Range-based anomaly detection (the paper's inference mitigation) only
    /// compares these bits because faults confined to the fractional part
    /// cause deviations smaller than the detection margin.
    #[inline]
    pub fn sign_and_integer_mask(&self) -> u32 {
        let total = u32::from(self.total_bits());
        let frac = u32::from(self.frac_bits);
        let word_mask = if total == 32 { u32::MAX } else { (1u32 << total) - 1 };
        word_mask & !((1u32 << frac) - 1)
    }

    /// Index of the sign bit (the most significant bit of the word).
    #[inline]
    pub fn sign_bit(&self) -> u8 {
        self.total_bits() - 1
    }

    /// Saturates a widened value at the format's raw scale (`2^-frac_bits`)
    /// to the representable raw range.
    #[inline]
    pub fn saturate_raw(&self, raw: i64) -> i32 {
        raw.clamp(i64::from(self.min_raw()), i64::from(self.max_raw())) as i32
    }

    /// Requantizes a widened product accumulator back into this format.
    ///
    /// The product of two raw words in this format carries `2 × frac_bits`
    /// fractional bits; native fixed-point kernels sum such products (plus a
    /// bias shifted up by `frac_bits`) in a widened accumulator and call this
    /// once per output element. Rounding is to nearest with ties away from
    /// zero — the same rule `f32::round` applies inside
    /// [`QValue::quantize`](crate::QValue::quantize) — and the result
    /// saturates at the representable raw range, so the native path agrees
    /// with the float-simulated path wherever the latter is exact.
    ///
    /// The implementation is a single branchless arithmetic-shift chain (the
    /// scalar form of the SIMD epilogue in `navft-nn`): round-half-away
    /// `(acc + half) >> frac` needs its bias reduced by one for negative
    /// accumulators because `2^frac - half == half`, so the sign-dependent
    /// adjust is computed with a mask instead of a branch. The add saturates,
    /// which pins accumulators within `half` of `i64::MAX` at the raw maximum
    /// instead of wrapping (the historical branchy formulation overflowed
    /// there in release builds).
    ///
    /// # Examples
    ///
    /// ```
    /// use navft_qformat::QFormat;
    ///
    /// let fmt = QFormat::Q3_4;
    /// // 1.5 * 2.0 == 3.0: raw 24 * raw 32 = 768 at scale 2^-8 -> raw 48.
    /// assert_eq!(fmt.requantize_product_sum(768), 48);
    /// // Half-way values round away from zero, matching `f32::round`.
    /// assert_eq!(fmt.requantize_product_sum(8), 1);
    /// assert_eq!(fmt.requantize_product_sum(-8), -1);
    /// ```
    #[inline]
    pub fn requantize_product_sum(&self, acc: i64) -> i32 {
        let frac = u32::from(self.frac_bits);
        // `(1 << frac) >> 1` is `half` for frac > 0 and 0 for frac == 0, so
        // the frac == 0 identity case needs no branch.
        let half = (1i64 << frac) >> 1;
        // Negative accumulators need bias `half - 1`:
        //   floor((acc + half - 1) / 2^frac) == -floor((-acc + half) / 2^frac)
        // because `2^frac - half == half`. `acc >> 63` is the all-ones mask
        // for negatives; the `half != 0` factor keeps frac == 0 exact.
        let adjust = half + ((acc >> 63) & -i64::from(half != 0));
        // `adjust >= 0`, so only positive overflow is possible; saturating
        // pins it at i64::MAX, which the final clamp maps to `max_raw`.
        let rounded = acc.saturating_add(adjust) >> frac;
        self.saturate_raw(rounded)
    }
}

impl Default for QFormat {
    /// Defaults to the 8-bit [`QFormat::Q3_4`] format used by the Grid World
    /// experiments.
    fn default() -> Self {
        QFormat::Q3_4
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(1,{},{})", self.int_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_widths() {
        assert_eq!(QFormat::Q4_11.total_bits(), 16);
        assert_eq!(QFormat::Q7_8.total_bits(), 16);
        assert_eq!(QFormat::Q10_5.total_bits(), 16);
        assert_eq!(QFormat::Q3_4.total_bits(), 8);
        assert_eq!(QFormat::Q2_13.total_bits(), 16);
    }

    #[test]
    fn ranges_match_definition() {
        let f = QFormat::Q3_4;
        assert_eq!(f.min_value(), -8.0);
        assert_eq!(f.max_value(), 8.0 - 0.0625);
        assert_eq!(f.resolution(), 0.0625);
        assert_eq!(f.max_raw(), 127);
        assert_eq!(f.min_raw(), -128);
    }

    #[test]
    fn new_rejects_oversized_formats() {
        assert!(QFormat::new(20, 20).is_err());
        assert!(QFormat::new(31, 1).is_err());
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(31, 0).is_ok());
        assert!(QFormat::new(0, 1).is_ok());
    }

    #[test]
    fn sign_and_integer_mask_covers_top_bits() {
        let f = QFormat::Q3_4; // 8 bits: sssi iiff -> 1 sign + 3 int + 4 frac
        assert_eq!(f.sign_and_integer_mask(), 0b1111_0000);
        assert_eq!(f.sign_bit(), 7);

        let f = QFormat::Q4_11;
        assert_eq!(f.sign_and_integer_mask(), 0b1111_1000_0000_0000);
    }

    #[test]
    fn requantize_product_sum_rounds_and_saturates() {
        let f = QFormat::Q3_4;
        // raw(1.25) * raw(2.0) = 20 * 32 = 640 at 2^-8 -> raw 40 (2.5).
        assert_eq!(f.requantize_product_sum(640), 40);
        // Ties round away from zero in both directions.
        assert_eq!(f.requantize_product_sum(24), 2);
        assert_eq!(f.requantize_product_sum(-24), -2);
        // Overflowing sums pin at the raw extremes instead of wrapping.
        assert_eq!(f.requantize_product_sum(1 << 30), f.max_raw());
        assert_eq!(f.requantize_product_sum(-(1 << 30)), f.min_raw());
        // frac_bits == 0: the accumulator is already at the raw scale.
        let ints = QFormat::new(6, 0).expect("valid format");
        assert_eq!(ints.requantize_product_sum(5), 5);
    }

    /// The historical branchy requantize, kept verbatim as the reference the
    /// branchless rewrite is pinned against. Only valid on the non-overflow
    /// domain `i64::MIN + half < acc <= i64::MAX - half` (outside it the old
    /// formulation wrapped in release builds; the rewrite saturates instead).
    fn requantize_branchy_reference(format: QFormat, acc: i64) -> i32 {
        let frac = u32::from(format.frac_bits());
        let rounded = if frac == 0 {
            acc
        } else {
            let half = 1i64 << (frac - 1);
            if acc >= 0 {
                (acc + half) >> frac
            } else {
                -((-acc + half) >> frac)
            }
        };
        format.saturate_raw(rounded)
    }

    fn equivalence_formats() -> Vec<QFormat> {
        vec![
            QFormat::Q4_11,
            QFormat::Q7_8,
            QFormat::Q10_5,
            QFormat::Q3_4,
            QFormat::Q2_5,
            QFormat::Q2_13,
            QFormat::new(6, 0).expect("valid format"),
            QFormat::new(31, 0).expect("valid format"),
            QFormat::new(0, 1).expect("valid format"),
            QFormat::new(0, 31).expect("valid format"),
            QFormat::new(15, 16).expect("valid format"),
        ]
    }

    #[test]
    fn branchless_requantize_matches_branchy_reference_near_edges() {
        for format in equivalence_formats() {
            let half = (1i64 << u32::from(format.frac_bits())) >> 1;
            let lo = i64::MIN + half + 1; // smallest acc the old version handled
            let hi = i64::MAX - half; // largest acc the old version handled
            let mut probes: Vec<i64> = Vec::new();
            for offset in 0..512 {
                probes.push(lo + offset);
                probes.push(hi - offset);
                probes.push(offset - 256);
            }
            // Rounding boundaries around every multiple of 2^frac near zero.
            for k in -64i64..=64 {
                let base = k << u32::from(format.frac_bits());
                probes.extend([base - 1, base, base + 1, base + half, base - half]);
            }
            for acc in probes {
                if acc < lo || acc > hi {
                    continue;
                }
                assert_eq!(
                    format.requantize_product_sum(acc),
                    requantize_branchy_reference(format, acc),
                    "format {format} acc {acc}"
                );
            }
        }
    }

    #[test]
    fn branchless_requantize_saturates_at_the_i64_extremes() {
        // Outside the old version's domain the rewrite must still be total:
        // the magnitude is astronomically out of range either way, so the
        // only correct answer is the raw extreme.
        for format in equivalence_formats() {
            assert_eq!(format.requantize_product_sum(i64::MIN), format.min_raw(), "{format} MIN");
            assert_eq!(format.requantize_product_sum(i64::MAX), format.max_raw(), "{format} MAX");
            let half = (1i64 << u32::from(format.frac_bits())) >> 1;
            // The saturating-add window the old formulation wrapped in:
            // the `half` accumulators just below `i64::MAX`.
            for delta in 0..half.min(4) {
                assert_eq!(
                    format.requantize_product_sum(i64::MAX - half + 1 + delta),
                    format.max_raw(),
                    "{format} MAX - half + 1 + {delta}"
                );
            }
            for delta in 0..4 {
                assert_eq!(
                    format.requantize_product_sum(i64::MIN + delta),
                    format.min_raw(),
                    "{format} MIN + {delta}"
                );
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn branchless_requantize_equals_branchy_reference(
            acc_seed in 0u64..u64::MAX,
            format_index in 0usize..11,
            near_zero in -4096i64..=4096,
        ) {
            use proptest::rand::{RngCore, SeedableRng};
            let formats = equivalence_formats();
            let format = formats[format_index];
            let half = (1i64 << u32::from(format.frac_bits())) >> 1;
            // Full-width accumulators (any bit pattern) plus small magnitudes
            // that exercise the rounding boundaries densely.
            let mut bits = proptest::rand::rngs::SmallRng::seed_from_u64(acc_seed);
            let wide = bits.next_u64() as i64;
            let shifted = wide >> (bits.next_u64() % 64);
            for probe in [wide, shifted, near_zero] {
                if probe > i64::MIN + half && probe <= i64::MAX - half {
                    proptest::prop_assert_eq!(
                        format.requantize_product_sum(probe),
                        requantize_branchy_reference(format, probe)
                    );
                }
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(QFormat::Q4_11.to_string(), "Q(1,4,11)");
        assert_eq!(QFormat::Q10_5.to_string(), "Q(1,10,5)");
    }

    #[test]
    fn default_is_grid_world_format() {
        assert_eq!(QFormat::default(), QFormat::Q3_4);
    }
}

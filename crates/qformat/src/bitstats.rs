//! Bit-population and value-distribution statistics over quantized words.
//!
//! Fig. 2b and Fig. 2d of the paper explain the asymmetry between stuck-at-0
//! and stuck-at-1 faults by looking at the trained policies' bit populations:
//! trained neural-network weights contain roughly 7× more `0` bits than `1`
//! bits, so forcing bits to `1` corrupts far more state than forcing them to
//! `0`. This module reproduces those statistics.

use crate::{QFormat, QValue};

/// Bit-population statistics over a collection of quantized words.
///
/// # Examples
///
/// ```
/// use navft_qformat::{QFormat, QValue, bitstats::BitStats};
///
/// let words: Vec<QValue> = [0.0f32, 0.5, -1.0]
///     .iter()
///     .map(|&v| QValue::quantize(v, QFormat::Q3_4))
///     .collect();
/// let stats = BitStats::from_values(&words);
/// assert_eq!(stats.total_bits(), 24);
/// assert!(stats.zero_fraction() > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitStats {
    ones: u64,
    zeros: u64,
}

impl BitStats {
    /// Creates empty statistics.
    pub fn new() -> BitStats {
        BitStats::default()
    }

    /// Computes statistics over a slice of quantized words.
    pub fn from_values(values: &[QValue]) -> BitStats {
        let mut stats = BitStats::new();
        stats.extend(values.iter().copied());
        stats
    }

    /// Computes statistics over raw `f32` values quantized on the fly.
    pub fn from_f32<I: IntoIterator<Item = f32>>(values: I, format: QFormat) -> BitStats {
        let mut stats = BitStats::new();
        stats.extend_f32(values, format);
        stats
    }

    /// Adds more words to the statistics.
    pub fn extend<I: IntoIterator<Item = QValue>>(&mut self, values: I) {
        for value in values {
            self.ones += u64::from(value.count_ones());
            self.zeros += u64::from(value.count_zeros());
        }
    }

    /// Adds raw two's-complement words in `format` to the statistics.
    ///
    /// This is the native-backend entry point: buffers that already hold raw
    /// Q-format words (e.g. a quantized network's live weight storage) are
    /// swept without any float round trip.
    pub fn extend_raw<I: IntoIterator<Item = i32>>(&mut self, raws: I, format: QFormat) {
        self.extend(raws.into_iter().map(|raw| QValue::from_raw(raw, format)));
    }

    /// Adds `f32` values to the statistics, quantizing each into `format`.
    pub fn extend_f32<I: IntoIterator<Item = f32>>(&mut self, values: I, format: QFormat) {
        self.extend(values.into_iter().map(|v| QValue::quantize(v, format)));
    }

    /// Number of `1` bits observed.
    pub fn ones(&self) -> u64 {
        self.ones
    }

    /// Number of `0` bits observed.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Total number of bits observed.
    pub fn total_bits(&self) -> u64 {
        self.ones + self.zeros
    }

    /// Fraction of bits that are `0` (in `[0, 1]`; 0 for empty statistics).
    pub fn zero_fraction(&self) -> f64 {
        if self.total_bits() == 0 {
            0.0
        } else {
            self.zeros as f64 / self.total_bits() as f64
        }
    }

    /// Fraction of bits that are `1`.
    pub fn one_fraction(&self) -> f64 {
        if self.total_bits() == 0 {
            0.0
        } else {
            self.ones as f64 / self.total_bits() as f64
        }
    }

    /// Ratio of `0` bits to `1` bits (the paper reports 7.17× for NN weights
    /// and 3.18× for tabular values). Returns `f64::INFINITY` if there are no
    /// `1` bits.
    pub fn zero_to_one_ratio(&self) -> f64 {
        if self.ones == 0 {
            f64::INFINITY
        } else {
            self.zeros as f64 / self.ones as f64
        }
    }
}

/// A fixed-width histogram of dequantized values, reproducing the value
/// distributions of Fig. 2b/2d.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueHistogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    min_seen: f32,
    max_seen: f32,
    total: u64,
}

impl ValueHistogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> ValueHistogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        ValueHistogram {
            lo,
            hi,
            counts: vec![0; bins],
            min_seen: f32::INFINITY,
            max_seen: f32::NEG_INFINITY,
            total: 0,
        }
    }

    /// Records one value; out-of-range values clamp to the edge bins.
    pub fn record(&mut self, value: f32) {
        let bins = self.counts.len();
        let t = ((value - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((t * bins as f32) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.min_seen = self.min_seen.min(value);
        self.max_seen = self.max_seen.max(value);
    }

    /// Records every value of an iterator.
    pub fn record_all<I: IntoIterator<Item = f32>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f32 {
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + width * (i as f32 + 0.5)
    }

    /// Smallest value recorded, or `None` if the histogram is empty.
    pub fn min(&self) -> Option<f32> {
        (self.total > 0).then_some(self.min_seen)
    }

    /// Largest value recorded, or `None` if the histogram is empty.
    pub fn max(&self) -> Option<f32> {
        (self.total > 0).then_some(self.max_seen)
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstats_on_zero_values_are_all_zero_bits() {
        let zeros = vec![QValue::quantize(0.0, QFormat::Q3_4); 10];
        let stats = BitStats::from_values(&zeros);
        assert_eq!(stats.ones(), 0);
        assert_eq!(stats.zeros(), 80);
        assert_eq!(stats.zero_fraction(), 1.0);
        assert_eq!(stats.zero_to_one_ratio(), f64::INFINITY);
    }

    #[test]
    fn bitstats_fractions_sum_to_one() {
        let values: Vec<QValue> =
            (-8..8).map(|i| QValue::quantize(i as f32 * 0.5, QFormat::Q3_4)).collect();
        let stats = BitStats::from_values(&values);
        assert!((stats.zero_fraction() + stats.one_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(stats.total_bits(), 16 * 8);
    }

    #[test]
    fn sparse_weights_have_more_zero_bits() {
        // Small-magnitude non-negative weights (like post-ReLU activations and
        // pruned/near-zero NN weights) produce mostly 0 bits.
        let sparse = BitStats::from_f32((0..100).map(|i| i as f32 * 0.001), QFormat::Q4_11);
        assert!(sparse.zero_to_one_ratio() > 2.0);
    }

    #[test]
    fn extend_raw_matches_quantized_counting() {
        let fmt = QFormat::Q3_4;
        let values: Vec<f32> = vec![-1.0, 0.5, 3.25, -0.0625];
        let from_f32 = BitStats::from_f32(values.iter().copied(), fmt);
        let mut from_raw = BitStats::new();
        from_raw.extend_raw(values.iter().map(|&v| QValue::quantize(v, fmt).raw()), fmt);
        assert_eq!(from_f32, from_raw);
    }

    #[test]
    fn empty_bitstats_report_zero_fractions() {
        let stats = BitStats::new();
        assert_eq!(stats.zero_fraction(), 0.0);
        assert_eq!(stats.one_fraction(), 0.0);
    }

    #[test]
    fn histogram_counts_and_extrema() {
        let mut h = ValueHistogram::new(-8.0, 8.0, 16);
        h.record_all([-8.0, 0.0, 7.5, 7.5]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.min(), Some(-8.0));
        assert_eq!(h.max(), Some(7.5));
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[15], 2);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = ValueHistogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn histogram_bin_center() {
        let h = ValueHistogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = ValueHistogram::new(0.0, 1.0, 2);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = ValueHistogram::new(0.0, 1.0, 0);
    }
}

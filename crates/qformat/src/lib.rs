//! Signed fixed-point `Q(sign, int, frac)` numerics with bit-level access.
//!
//! Learning-based navigation accelerators store policies (Q-tables, network
//! weights, feature maps and activations) as quantized fixed-point words.
//! Hardware faults — stuck-at defects and transient bit flips — manifest at the
//! level of the *bits* of these words, so any faithful fault-injection study
//! needs a numeric type that exposes its bit pattern.
//!
//! This crate provides:
//!
//! * [`QFormat`] — a fixed-point format descriptor `Q(1, int, frac)` (one sign
//!   bit, `int` integer bits, `frac` fractional bits), including the formats
//!   the paper evaluates: [`QFormat::Q4_11`], [`QFormat::Q7_8`],
//!   [`QFormat::Q10_5`] and the 8-bit [`QFormat::Q3_4`] used for Grid World.
//! * [`QValue`] — a single quantized word in a given format with saturating
//!   quantization, exact dequantization and bit get/set/flip/stuck operations.
//! * [`bitstats`] — bit-population and value-histogram statistics used to
//!   explain why stuck-at-0 and stuck-at-1 faults behave differently
//!   (Fig. 2b/2d of the paper).
//!
//! # The numeric domain of two backends
//!
//! This crate defines the quantized domain both inference backends of
//! `navft-nn` compute in. The `f32` backend *simulates* a fixed-point
//! datapath by round-tripping every value through [`QValue::quantize`]; the
//! native backend stores raw two's-complement words and leans on the
//! integer-only primitives here: [`QFormat::requantize_product_sum`]
//! (widened-accumulator requantization with saturation and
//! round-to-nearest-away-from-zero, matching `f32::round`) and
//! [`bitstats::BitStats::extend_raw`] (bit statistics without a float round
//! trip).
//!
//! ## Paper data-type mapping
//!
//! The drone policy sweep of Fig. 7e compares the 16-bit formats
//! [`QFormat::Q4_11`], [`QFormat::Q7_8`] and [`QFormat::Q10_5`] — wider
//! integer ranges make a flipped high-order bit a larger outlier, which is
//! why `Q(1,10,5)` is the least fault-resilient. Grid World policies store
//! 8-bit [`QFormat::Q3_4`] words (matching the value histograms of
//! Fig. 2b/2d), and the extended ablation adds [`QFormat::Q2_5`] and
//! [`QFormat::Q2_13`]. The data-type experiments execute each of these
//! formats natively on the quantized backend.
//!
//! # Examples
//!
//! ```
//! use navft_qformat::{QFormat, QValue};
//!
//! # fn main() -> Result<(), navft_qformat::FormatError> {
//! let fmt = QFormat::new(4, 11)?; // Q(1,4,11), 16-bit word
//! let w = QValue::quantize(1.5, fmt);
//! assert!((w.to_f32() - 1.5).abs() < fmt.resolution());
//!
//! // Flip the most significant (sign) bit: a small weight becomes a large
//! // negative outlier — exactly the failure mode range-based anomaly
//! // detection is designed to catch.
//! let corrupted = w.with_flipped_bit(fmt.total_bits() - 1)?;
//! assert!(corrupted.to_f32() < -14.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;
mod value;

pub mod bitstats;

pub use error::FormatError;
pub use format::QFormat;
pub use value::QValue;

use std::error::Error;
use std::fmt;

/// Error type for fixed-point format construction and bit-level access.
///
/// Returned by [`QFormat::new`](crate::QFormat::new) and the bit-manipulation
/// methods on [`QValue`](crate::QValue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatError {
    /// The requested format does not fit in the 32-bit backing word or has no
    /// value bits at all.
    InvalidFormat {
        /// Requested number of integer bits.
        int_bits: u8,
        /// Requested number of fractional bits.
        frac_bits: u8,
    },
    /// A bit index was outside `0..total_bits`.
    BitIndexOutOfRange {
        /// The offending bit index.
        index: u8,
        /// The number of bits in the word.
        total_bits: u8,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FormatError::InvalidFormat { int_bits, frac_bits } => write!(
                f,
                "invalid fixed-point format Q(1,{int_bits},{frac_bits}): total width must be in 2..=32 bits"
            ),
            FormatError::BitIndexOutOfRange { index, total_bits } => write!(
                f,
                "bit index {index} out of range for a {total_bits}-bit word"
            ),
        }
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = FormatError::InvalidFormat { int_bits: 40, frac_bits: 40 };
        let msg = format!("{e}");
        assert!(msg.contains("Q(1,40,40)"));
        assert!(msg.starts_with("invalid"));

        let e = FormatError::BitIndexOutOfRange { index: 9, total_bits: 8 };
        assert!(format!("{e}").contains("bit index 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormatError>();
    }
}

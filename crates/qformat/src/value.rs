use std::cmp::Ordering;
use std::fmt;

use crate::{FormatError, QFormat};

/// A single quantized fixed-point word in a given [`QFormat`].
///
/// The value is stored as the raw two's-complement bit pattern (only the low
/// `total_bits` bits are meaningful), which makes bit-exact fault injection —
/// stuck-at-0, stuck-at-1 and bit flips — trivial and lossless.
///
/// # Examples
///
/// ```
/// use navft_qformat::{QFormat, QValue};
///
/// let v = QValue::quantize(-2.5, QFormat::Q3_4);
/// assert_eq!(v.to_f32(), -2.5);
/// assert_eq!(v.raw(), -40); // -2.5 / 2^-4
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct QValue {
    bits: u32,
    format: QFormat,
}

impl QValue {
    /// Quantizes an `f32` into this format, rounding to nearest and saturating
    /// at the format's representable range.
    ///
    /// Non-finite inputs saturate: `+inf`/`NaN` map to the maximum value and
    /// `-inf` to the minimum value.
    ///
    /// # Examples
    ///
    /// ```
    /// use navft_qformat::{QFormat, QValue};
    ///
    /// let v = QValue::quantize(100.0, QFormat::Q3_4);
    /// assert_eq!(v.to_f32(), QFormat::Q3_4.max_value());
    /// ```
    pub fn quantize(value: f32, format: QFormat) -> QValue {
        let scaled = value * (2.0f32).powi(i32::from(format.frac_bits()));
        let raw = if scaled.is_nan() {
            format.max_raw()
        } else {
            let rounded = scaled.round();
            if rounded >= format.max_raw() as f32 {
                format.max_raw()
            } else if rounded <= format.min_raw() as f32 {
                format.min_raw()
            } else {
                rounded as i32
            }
        };
        QValue::from_raw(raw, format)
    }

    /// Builds a value from a raw two's-complement integer in `format`.
    ///
    /// The raw value is clamped to the representable raw range.
    pub fn from_raw(raw: i32, format: QFormat) -> QValue {
        let raw = raw.clamp(format.min_raw(), format.max_raw());
        QValue { bits: (raw as u32) & format_mask(format), format }
    }

    /// Builds a value directly from a bit pattern (the low
    /// [`total_bits`](QFormat::total_bits) bits of `bits`).
    ///
    /// Unlike [`QValue::from_raw`] no clamping is performed: any bit pattern is
    /// a legal word, which is precisely what fault injection needs.
    pub fn from_bits(bits: u32, format: QFormat) -> QValue {
        QValue { bits: bits & format_mask(format), format }
    }

    /// The format this word is encoded in.
    #[inline]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The raw bit pattern (low [`total_bits`](QFormat::total_bits) bits).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The raw two's-complement integer value (sign-extended).
    #[inline]
    pub fn raw(&self) -> i32 {
        let total = u32::from(self.format.total_bits());
        let shift = 32 - total;
        ((self.bits << shift) as i32) >> shift
    }

    /// Dequantizes to `f32` (exact: every representable word maps to a unique
    /// `f32` for formats up to 24 value bits).
    #[inline]
    pub fn to_f32(&self) -> f32 {
        self.raw() as f32 * self.format.resolution()
    }

    /// Returns the value of bit `index` (0 = least-significant bit).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::BitIndexOutOfRange`] if `index` is not below the
    /// word width.
    pub fn bit(&self, index: u8) -> Result<bool, FormatError> {
        self.check_index(index)?;
        Ok((self.bits >> index) & 1 == 1)
    }

    /// Returns a copy with bit `index` flipped (a transient single-event
    /// upset).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::BitIndexOutOfRange`] if `index` is not below the
    /// word width.
    pub fn with_flipped_bit(&self, index: u8) -> Result<QValue, FormatError> {
        self.check_index(index)?;
        Ok(QValue { bits: self.bits ^ (1 << index), format: self.format })
    }

    /// Returns a copy with bit `index` forced to `value` (a stuck-at fault).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::BitIndexOutOfRange`] if `index` is not below the
    /// word width.
    pub fn with_stuck_bit(&self, index: u8, value: bool) -> Result<QValue, FormatError> {
        self.check_index(index)?;
        let bits = if value { self.bits | (1 << index) } else { self.bits & !(1 << index) };
        Ok(QValue { bits, format: self.format })
    }

    /// Saturating addition of two words in the same format.
    ///
    /// # Panics
    ///
    /// Panics if the two operands use different formats.
    pub fn saturating_add(&self, other: &QValue) -> QValue {
        assert_eq!(self.format, other.format, "operands must share a format");
        QValue::from_raw(self.raw().saturating_add(other.raw()), self.format)
    }

    /// Saturating subtraction of two words in the same format.
    ///
    /// # Panics
    ///
    /// Panics if the two operands use different formats.
    pub fn saturating_sub(&self, other: &QValue) -> QValue {
        assert_eq!(self.format, other.format, "operands must share a format");
        QValue::from_raw(self.raw().saturating_sub(other.raw()), self.format)
    }

    /// Saturating multiplication of two words in the same format (the result
    /// is rescaled back into the format).
    ///
    /// # Panics
    ///
    /// Panics if the two operands use different formats.
    pub fn saturating_mul(&self, other: &QValue) -> QValue {
        assert_eq!(self.format, other.format, "operands must share a format");
        let wide = i64::from(self.raw()) * i64::from(other.raw());
        let rescaled = wide >> self.format.frac_bits();
        let clamped =
            rescaled.clamp(i64::from(self.format.min_raw()), i64::from(self.format.max_raw()));
        QValue::from_raw(clamped as i32, self.format)
    }

    /// Re-encodes this value into another format (dequantize then quantize).
    pub fn convert(&self, format: QFormat) -> QValue {
        QValue::quantize(self.to_f32(), format)
    }

    /// Number of `1` bits in the word.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Number of `0` bits in the word (within the format's width).
    #[inline]
    pub fn count_zeros(&self) -> u32 {
        u32::from(self.format.total_bits()) - self.count_ones()
    }

    fn check_index(&self, index: u8) -> Result<(), FormatError> {
        if index >= self.format.total_bits() {
            Err(FormatError::BitIndexOutOfRange { index, total_bits: self.format.total_bits() })
        } else {
            Ok(())
        }
    }
}

fn format_mask(format: QFormat) -> u32 {
    let total = u32::from(format.total_bits());
    if total == 32 {
        u32::MAX
    } else {
        (1u32 << total) - 1
    }
}

impl fmt::Debug for QValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QValue {{ {} = {:#0width$b} in {} }}",
            self.to_f32(),
            self.bits,
            self.format,
            width = usize::from(self.format.total_bits()) + 2
        )
    }
}

impl fmt::Display for QValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl PartialOrd for QValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.format == other.format {
            Some(self.raw().cmp(&other.raw()))
        } else {
            self.to_f32().partial_cmp(&other.to_f32())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrips_representable_values() {
        let fmt = QFormat::Q3_4;
        for raw in fmt.min_raw()..=fmt.max_raw() {
            let v = QValue::from_raw(raw, fmt);
            let back = QValue::quantize(v.to_f32(), fmt);
            assert_eq!(back.raw(), raw);
        }
    }

    #[test]
    fn quantize_saturates() {
        let fmt = QFormat::Q3_4;
        assert_eq!(QValue::quantize(100.0, fmt).to_f32(), fmt.max_value());
        assert_eq!(QValue::quantize(-100.0, fmt).to_f32(), fmt.min_value());
        assert_eq!(QValue::quantize(f32::INFINITY, fmt).to_f32(), fmt.max_value());
        assert_eq!(QValue::quantize(f32::NEG_INFINITY, fmt).to_f32(), fmt.min_value());
        assert_eq!(QValue::quantize(f32::NAN, fmt).to_f32(), fmt.max_value());
    }

    #[test]
    fn negative_values_are_twos_complement() {
        let v = QValue::quantize(-1.0, QFormat::Q3_4);
        assert_eq!(v.raw(), -16);
        assert_eq!(v.bits(), 0b1111_0000);
        assert_eq!(v.to_f32(), -1.0);
    }

    #[test]
    fn flipping_the_sign_bit_creates_an_outlier() {
        let fmt = QFormat::Q4_11;
        let v = QValue::quantize(0.25, fmt);
        let corrupted = v.with_flipped_bit(fmt.sign_bit()).expect("valid bit");
        assert!(corrupted.to_f32() < fmt.min_value() / 2.0);
    }

    #[test]
    fn flipping_a_fraction_bit_is_a_small_perturbation() {
        let fmt = QFormat::Q4_11;
        let v = QValue::quantize(0.25, fmt);
        let corrupted = v.with_flipped_bit(0).expect("valid bit");
        assert!((corrupted.to_f32() - v.to_f32()).abs() <= fmt.resolution());
    }

    #[test]
    fn stuck_bits_are_idempotent() {
        let fmt = QFormat::Q3_4;
        let v = QValue::quantize(3.0, fmt);
        let s1 = v.with_stuck_bit(6, true).expect("valid");
        let s2 = s1.with_stuck_bit(6, true).expect("valid");
        assert_eq!(s1, s2);
        let z1 = v.with_stuck_bit(6, false).expect("valid");
        let z2 = z1.with_stuck_bit(6, false).expect("valid");
        assert_eq!(z1, z2);
    }

    #[test]
    fn bit_index_out_of_range_is_an_error() {
        let v = QValue::quantize(0.0, QFormat::Q3_4);
        assert!(matches!(v.bit(8), Err(FormatError::BitIndexOutOfRange { .. })));
        assert!(v.with_flipped_bit(8).is_err());
        assert!(v.with_stuck_bit(100, true).is_err());
    }

    #[test]
    fn saturating_arithmetic() {
        let fmt = QFormat::Q3_4;
        let a = QValue::quantize(6.0, fmt);
        let b = QValue::quantize(5.0, fmt);
        assert_eq!(a.saturating_add(&b).to_f32(), fmt.max_value());
        let c = QValue::quantize(-7.0, fmt);
        assert_eq!(c.saturating_add(&c).to_f32(), fmt.min_value());
        let d = QValue::quantize(1.5, fmt);
        let e = QValue::quantize(2.0, fmt);
        assert_eq!(d.saturating_mul(&e).to_f32(), 3.0);
        assert_eq!(a.saturating_sub(&c).to_f32(), fmt.max_value());
    }

    #[test]
    fn convert_between_formats() {
        let v = QValue::quantize(1.5, QFormat::Q4_11);
        let w = v.convert(QFormat::Q10_5);
        assert_eq!(w.to_f32(), 1.5);
        let narrow = QValue::quantize(100.0, QFormat::Q10_5).convert(QFormat::Q4_11);
        assert_eq!(narrow.to_f32(), QFormat::Q4_11.max_value());
    }

    #[test]
    fn ordering_within_a_format_matches_value_ordering() {
        let fmt = QFormat::Q3_4;
        let a = QValue::quantize(-2.0, fmt);
        let b = QValue::quantize(3.5, fmt);
        assert!(a < b);
    }

    #[test]
    fn count_ones_and_zeros_cover_the_word() {
        let fmt = QFormat::Q3_4;
        let v = QValue::quantize(-1.0, fmt); // 0b1111_0000
        assert_eq!(v.count_ones(), 4);
        assert_eq!(v.count_zeros(), 4);
    }

    #[test]
    fn debug_is_nonempty() {
        let v = QValue::quantize(1.0, QFormat::Q3_4);
        assert!(!format!("{v:?}").is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_format() -> impl Strategy<Value = QFormat> {
        (0u8..=15, 0u8..=15)
            .prop_filter("at least one value bit", |(i, f)| i + f >= 1)
            .prop_map(|(i, f)| QFormat::new(i, f).expect("valid format"))
    }

    /// Formats whose full precision survives a round-trip through `f32`
    /// arithmetic: `quantize` scales by `2^frac_bits` in `f32`, so formats
    /// wider than the 24-bit mantissa would see representation error larger
    /// than their own resolution.
    fn arb_narrow_format() -> impl Strategy<Value = QFormat> {
        (0u8..=10, 0u8..=12)
            .prop_filter("at least one value bit", |(i, f)| i + f >= 1)
            .prop_map(|(i, f)| QFormat::new(i, f).expect("valid format"))
    }

    proptest! {
        #[test]
        fn quantize_never_exceeds_range(value in -2000.0f32..2000.0, fmt in arb_format()) {
            let q = QValue::quantize(value, fmt);
            prop_assert!(q.to_f32() <= fmt.max_value());
            prop_assert!(q.to_f32() >= fmt.min_value());
        }

        #[test]
        fn quantization_error_is_bounded_by_half_resolution(
            value in -7.9f32..7.9, ) {
            let fmt = QFormat::Q3_4;
            let q = QValue::quantize(value, fmt);
            prop_assert!((q.to_f32() - value).abs() <= fmt.resolution() / 2.0 + f32::EPSILON);
        }

        #[test]
        fn double_flip_is_identity(raw in -128i32..=127, bit in 0u8..8) {
            let fmt = QFormat::Q3_4;
            let v = QValue::from_raw(raw, fmt);
            let twice = v
                .with_flipped_bit(bit).expect("valid")
                .with_flipped_bit(bit).expect("valid");
            prop_assert_eq!(v, twice);
        }

        #[test]
        fn quantize_dequantize_roundtrip_error_is_bounded(
            value in -4000.0f32..4000.0,
            fmt in arb_narrow_format(),
        ) {
            // Quantize → dequantize must land within one quantization step
            // (2^-frac_bits) of the nearest representable value, i.e. of the
            // input clamped to the format's range.
            let clamped = value.clamp(fmt.min_value(), fmt.max_value());
            let roundtrip = QValue::quantize(value, fmt).to_f32();
            let step = fmt.resolution(); // == 2^-frac_bits
            prop_assert!(
                (roundtrip - clamped).abs() <= step,
                "format Q{}.{}: {} round-tripped to {} (step {})",
                fmt.int_bits(), fmt.frac_bits(), value, roundtrip, step
            );
        }

        #[test]
        fn quantize_saturates_at_format_extremes(
            beyond in 0.0f32..1e6,
            fmt in arb_format(),
        ) {
            // Anything at or past the representable range must pin to the
            // extreme raw codes rather than wrapping.
            let hi = QValue::quantize(fmt.max_value() + beyond, fmt);
            prop_assert_eq!(hi.raw(), fmt.max_raw());
            let lo = QValue::quantize(fmt.min_value() - beyond, fmt);
            prop_assert_eq!(lo.raw(), fmt.min_raw());
        }

        #[test]
        fn from_bits_roundtrips_raw(raw in -128i32..=127) {
            let fmt = QFormat::Q3_4;
            let v = QValue::from_raw(raw, fmt);
            let w = QValue::from_bits(v.bits(), fmt);
            prop_assert_eq!(v.raw(), w.raw());
        }

        #[test]
        fn conversion_to_wider_format_is_lossless(raw in -128i32..=127) {
            let narrow = QFormat::Q3_4;
            let wide = QFormat::Q4_11;
            let v = QValue::from_raw(raw, narrow);
            prop_assert_eq!(v.convert(wide).to_f32(), v.to_f32());
        }
    }
}

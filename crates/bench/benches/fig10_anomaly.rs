//! Fig. 10 bench: range-based anomaly detection on the Grid World NN policy
//! (mitigated vs unmitigated inference under weight faults).

use criterion::{criterion_group, criterion_main, Criterion};
use navft_core::experiments::fig10;
use navft_core::Scale;

fn bench(c: &mut Criterion) {
    let params = Scale::Smoke.grid();
    let mut group = c.benchmark_group("fig10_anomaly");
    group.sample_size(10);
    for (label, mitigated) in [("unmitigated", false), ("mitigated", true)] {
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fig10::grid_success_with_guard(0.01, mitigated, &params, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

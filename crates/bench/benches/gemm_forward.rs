//! Blocked-GEMM microbench: the cache-blocked im2row GEMM kernels of the
//! generic batched engine versus the naive per-row reference kernels, on
//! both numeric backends at the batch sizes the campaigns use.
//!
//! The two paths are bit-identical (the GEMM accumulates every output in the
//! naive kernel's reduction order — pinned by proptests); this bench tracks
//! the speed gap that makes the blocked path the default. The win comes from
//! register tiling (16 independent accumulators instead of one
//! latency-bound MAC chain per output) and from amortizing weight loads over
//! `NR` batch columns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use navft_nn::{mlp, C3f2Config, Network, NoHooks, QScratch, QTensor, Scratch, Tensor};
use navft_qformat::QFormat;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_model(
    c: &mut Criterion,
    group_name: &str,
    network: &Network,
    input_shape: &[usize],
    batches: &[usize],
    format: QFormat,
) {
    let mut group = c.benchmark_group(group_name);
    for &batch in batches {
        let inputs: Vec<Tensor> =
            (0..batch).map(|i| Tensor::full(input_shape, 0.01 * (i + 1) as f32)).collect();
        group.bench_function(format!("f32_naive_x{batch}"), |b| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                network.forward_batch_naive_into(black_box(&inputs), &mut scratch, &mut NoHooks);
                scratch.row(batch - 1)[0]
            });
        });
        group.bench_function(format!("f32_gemm_x{batch}"), |b| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                network.forward_batch_into(black_box(&inputs), &mut scratch, &mut NoHooks);
                scratch.row(batch - 1)[0]
            });
        });
        let qnet = network.to_quantized(format);
        let qinputs: Vec<QTensor> = inputs.iter().map(|t| QTensor::quantize(t, format)).collect();
        group.bench_function(format!("native_{format}_naive_x{batch}"), |b| {
            let mut scratch = QScratch::new();
            b.iter(|| {
                qnet.forward_batch_naive_into(black_box(&qinputs), &mut scratch, &mut NoHooks);
                scratch.row(batch - 1)[0]
            });
        });
        group.bench_function(format!("native_{format}_gemm_x{batch}"), |b| {
            let mut scratch = QScratch::new();
            b.iter(|| {
                qnet.forward_batch_into(black_box(&qinputs), &mut scratch, &mut NoHooks);
                scratch.row(batch - 1)[0]
            });
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let grid_policy = mlp(&[100, 32, 4], &mut rng);
    bench_model(c, "gemm_forward_grid_mlp", &grid_policy, &[100], &[1, 64], QFormat::Q3_4);

    let config = C3f2Config::scaled();
    let c3f2 = config.build(&mut rng);
    bench_model(
        c,
        "gemm_forward_c3f2_scaled",
        &c3f2,
        &config.input_shape(),
        &[1, 64],
        QFormat::Q4_11,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Component microbench: fixed-point quantization and bit-level fault
//! application — the inner loop of every fault-injection campaign.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use navft_fault::{FaultKind, FaultMap};
use navft_qformat::{QFormat, QValue};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("qformat_ops");

    group.bench_function("quantize_dequantize_q4_11", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1024 {
                let v = (i as f32 - 512.0) * 0.01;
                acc += QValue::quantize(black_box(v), QFormat::Q4_11).to_f32();
            }
            acc
        });
    });

    group.bench_function("sample_fault_map_1pct_over_64k_bits", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            FaultMap::sample(4096, QFormat::Q4_11, 0.01, FaultKind::BitFlip, &mut rng).len()
        });
    });

    group.bench_function("corrupt_4096_word_buffer", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        let map = FaultMap::sample(4096, QFormat::Q4_11, 0.01, FaultKind::BitFlip, &mut rng);
        let clean: Vec<f32> = (0..4096).map(|i| (i % 97) as f32 * 0.01).collect();
        b.iter(|| {
            let mut buf = clean.clone();
            map.corrupt_f32(&mut buf, QFormat::Q4_11);
            buf[0]
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig. 8 bench: Grid World training with the adaptive exploration-rate
//! mitigation attached (one representative cell).

use criterion::{criterion_group, criterion_main, Criterion};
use navft_core::experiments::fig8;
use navft_core::grid_policies::PolicyKind;
use navft_core::Scale;
use navft_fault::FaultKind;

fn bench(c: &mut Criterion) {
    let params = Scale::Smoke.grid();
    let mut group = c.benchmark_group("fig8_mitigation");
    group.sample_size(10);
    group.bench_function("tabular_mitigated_transient_cell", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            fig8::mitigated_training_success(
                PolicyKind::Tabular,
                FaultKind::BitFlip,
                0.005,
                50,
                &params,
                seed,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fixed-point inference microbench: the `f32` backend (simulating the
//! quantized datapath by requantizing every activation) versus the native
//! integer backend at the batch sizes the campaigns use.
//!
//! The native path trades per-element float quantize/dequantize round trips
//! for one widened-accumulator MAC sweep plus a single requantize per output
//! element — the shape of the win an integer accelerator realizes — and is
//! tracked here from day one at batch sizes {1, 64} in an 8-bit (Q3_4) and a
//! 16-bit (Q4_11) format.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use navft_nn::{mlp, C3f2Config, Network, NoHooks, QScratch, QTensor, Scratch, Tensor};
use navft_qformat::QFormat;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_model(
    c: &mut Criterion,
    group_name: &str,
    network: &Network,
    input_shape: &[usize],
    batches: &[usize],
    formats: &[QFormat],
) {
    let mut group = c.benchmark_group(group_name);
    for &batch in batches {
        let inputs: Vec<Tensor> =
            (0..batch).map(|i| Tensor::full(input_shape, 0.01 * (i + 1) as f32)).collect();
        for &format in formats {
            // The f32 simulation of this format: grid parameters plus a
            // requantize of every activation buffer.
            let simulated = network.clone().quantize_params(format);
            group.bench_function(format!("f32_sim_{format}_x{batch}"), |b| {
                let mut scratch = Scratch::new();
                b.iter(|| {
                    simulated.forward_batch_into(black_box(&inputs), &mut scratch, &mut NoHooks);
                    scratch.row(batch - 1)[0]
                });
            });
            let qnet = network.to_quantized(format);
            let qinputs: Vec<QTensor> =
                inputs.iter().map(|t| QTensor::quantize(t, format)).collect();
            group.bench_function(format!("native_{format}_x{batch}"), |b| {
                let mut scratch = QScratch::new();
                b.iter(|| {
                    qnet.forward_batch_into(black_box(&qinputs), &mut scratch, &mut NoHooks);
                    scratch.row(batch - 1)[0]
                });
            });
        }
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let grid_policy = mlp(&[100, 32, 4], &mut rng);
    let formats = [QFormat::Q3_4, QFormat::Q4_11];
    bench_model(c, "quantized_forward_grid_mlp", &grid_policy, &[100], &[1, 64], &formats);

    let config = C3f2Config::scaled();
    let c3f2 = config.build(&mut rng);
    bench_model(
        c,
        "quantized_forward_c3f2_scaled",
        &c3f2,
        &config.input_shape(),
        &[1, 64],
        &formats,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);

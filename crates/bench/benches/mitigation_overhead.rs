//! The headline overhead claim: range-based anomaly detection adds a small
//! runtime overhead compared to the unprotected forward pass (the paper
//! reports < 3 %).
//!
//! All variants run on the batched engine's scratch path, so the comparison
//! isolates the mitigation cost from allocator traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use navft_core::drone_policy::train_drone_policy;
use navft_core::Scale;
use navft_dronesim::{DepthCamera, DroneWorld};
use navft_mitigation::{RangeGuard, RangeGuardConfig};
use navft_nn::{NoHooks, Scratch, Tensor};
use navft_qformat::QFormat;

fn bench(c: &mut Criterion) {
    let params = Scale::Smoke.drone();
    let world = DroneWorld::indoor_long();
    let policy = train_drone_policy(&world, &params, 2);
    let guard = RangeGuard::from_network(&policy, QFormat::Q4_11, RangeGuardConfig::paper());
    let frame = Tensor::full(&DepthCamera::scaled().frame_shape(), 0.4);

    let mut group = c.benchmark_group("mitigation_overhead");
    group.bench_function("forward_unprotected", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| policy.forward_scratch(&frame, &mut scratch, &mut NoHooks).len());
    });
    group.bench_function("forward_batch16_unprotected", |b| {
        let mut scratch = Scratch::new();
        let frames = vec![frame.clone(); 16];
        b.iter(|| {
            policy.forward_batch_into(&frames, &mut scratch, &mut NoHooks);
            scratch.row(15)[0]
        });
    });
    group.bench_function("forward_with_periodic_scrub", |b| {
        let mut protected = policy.clone();
        let mut scratch = Scratch::new();
        let mut i = 0usize;
        b.iter(|| {
            if i.is_multiple_of(25) {
                guard.scrub(&mut protected);
            }
            i += 1;
            protected.forward_scratch(&frame, &mut scratch, &mut NoHooks).len()
        });
    });
    group.bench_function("weight_scrub_alone", |b| {
        let mut protected = policy.clone();
        b.iter(|| guard.scrub(&mut protected));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

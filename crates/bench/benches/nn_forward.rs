//! Component microbench: forward-pass latency of the policy networks (the
//! unit of work every inference fault campaign multiplies).

use criterion::{criterion_group, criterion_main, Criterion};
use navft_nn::{mlp, C3f2Config, ForwardTrace, NoHooks, Scratch, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let grid_policy = mlp(&[100, 32, 4], &mut rng);
    let scaled = C3f2Config::scaled().build(&mut rng);

    let mut group = c.benchmark_group("nn_forward");
    group.bench_function("grid_mlp_forward", |b| {
        let x = Tensor::full(&[100], 0.1);
        b.iter(|| grid_policy.forward(&x));
    });
    group.bench_function("grid_mlp_forward_scratch", |b| {
        let x = Tensor::full(&[100], 0.1);
        let mut scratch = Scratch::new();
        b.iter(|| grid_policy.forward_scratch(&x, &mut scratch, &mut NoHooks).len());
    });
    group.bench_function("c3f2_scaled_forward", |b| {
        let x = Tensor::full(&C3f2Config::scaled().input_shape(), 0.3);
        b.iter(|| scaled.forward(&x));
    });
    group.bench_function("c3f2_scaled_forward_scratch", |b| {
        let x = Tensor::full(&C3f2Config::scaled().input_shape(), 0.3);
        let mut scratch = Scratch::new();
        b.iter(|| scaled.forward_scratch(&x, &mut scratch, &mut NoHooks).len());
    });
    group.bench_function("c3f2_scaled_traced_forward_and_fc_backward", |b| {
        let config = C3f2Config::scaled();
        let mut net = config.build(&mut rng);
        let x = Tensor::full(&config.input_shape(), 0.3);
        let mut trace = ForwardTrace::new();
        b.iter(|| {
            net.forward_traced_into(&x, &mut trace);
            let grad = vec![0.01f32; 25];
            net.backward_tail(&trace, &grad, 0.001, config.first_fc_layer())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

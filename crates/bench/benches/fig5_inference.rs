//! Fig. 5 bench: Grid World inference under the four fault modes (one BER
//! point per mode, smoke-sized).

use criterion::{criterion_group, criterion_main, Criterion};
use navft_core::experiments::fig5::{self, InferenceMode};
use navft_core::grid_policies::PolicyKind;
use navft_core::Scale;

fn bench(c: &mut Criterion) {
    let params = Scale::Smoke.grid();
    let mut group = c.benchmark_group("fig5_inference");
    group.sample_size(10);
    for mode in InferenceMode::ALL {
        group.bench_function(format!("tabular_{}", mode.label()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fig5::inference_success(PolicyKind::Tabular, mode, 0.005, &params, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

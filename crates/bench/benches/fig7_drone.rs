//! Fig. 7 bench: drone inference under weight faults (environment, layer and
//! data-type sensitivity at one representative point each), plus the raw
//! simulator step rate.

use criterion::{criterion_group, criterion_main, Criterion};
use navft_core::drone_policy::{heuristic_action, train_drone_policy};
use navft_core::Scale;
use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_qformat::QFormat;
use navft_rl::{evaluate_network_vision, InferenceFaultMode, VisionEnvironment};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let params = Scale::Smoke.drone();
    let world = DroneWorld::indoor_long();
    let policy = train_drone_policy(&world, &params, 1);

    let mut group = c.benchmark_group("fig7_drone");
    group.sample_size(10);

    group.bench_function("simulator_step_with_heuristic_pilot", |b| {
        let mut sim = DroneSim::indoor_long();
        let mut frame = sim.reset();
        b.iter(|| {
            let t = sim.step(heuristic_action(&frame));
            frame = if t.terminal { sim.reset() } else { t.observation };
        });
    });

    group.bench_function("weight_fault_flight_evaluation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            let injector = Injector::sample(
                FaultTarget::new(FaultSite::WeightBuffer),
                policy.weight_count(),
                QFormat::Q4_11,
                1e-3,
                FaultKind::BitFlip,
                &mut rng,
            );
            let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
            evaluate_network_vision(
                &mut sim,
                &policy,
                1,
                params.max_steps,
                &InferenceFaultMode::TransientWholeEpisode(injector),
                &mut rng,
            )
            .mean_distance
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

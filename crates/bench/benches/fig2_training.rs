//! Fig. 2 bench: Grid World training under training-time faults (one
//! representative heatmap cell per policy kind, smoke-sized).

use criterion::{criterion_group, criterion_main, Criterion};
use navft_core::experiments::fig2;
use navft_core::grid_policies::PolicyKind;
use navft_core::Scale;
use navft_fault::FaultKind;

fn bench(c: &mut Criterion) {
    let params = Scale::Smoke.grid();
    let mut group = c.benchmark_group("fig2_training");
    group.sample_size(10);
    for kind in [PolicyKind::Tabular, PolicyKind::Network] {
        group.bench_function(format!("{kind}_transient_cell"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                fig2::faulty_training_success(kind, FaultKind::BitFlip, 0.005, 50, &params, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Batched-inference microbench: the per-sample forward pass versus the
//! preallocated `forward_batch` engine at the batch sizes the DQN learning
//! step and the figure campaigns actually use.
//!
//! The batched path wins twice: it eliminates the per-layer tensor
//! allocations of the serial path (zero heap traffic once the scratch is
//! warm) and walks each layer's weights once per sweep instead of once per
//! sample.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use navft_nn::{mlp, C3f2Config, NoHooks, Scratch, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let grid_policy = mlp(&[100, 32, 4], &mut rng);
    let c3f2 = C3f2Config::scaled().build(&mut rng);

    let mut group = c.benchmark_group("forward_batch");
    for &batch in &[1usize, 8, 64] {
        let inputs: Vec<Tensor> =
            (0..batch).map(|i| Tensor::full(&[100], 0.01 * i as f32)).collect();
        group.bench_function(format!("grid_mlp_serial_x{batch}"), |b| {
            b.iter(|| {
                let mut sum = 0.0f32;
                for input in &inputs {
                    sum += grid_policy.forward(black_box(input)).data()[0];
                }
                sum
            });
        });
        group.bench_function(format!("grid_mlp_batched_x{batch}"), |b| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                grid_policy.forward_batch_into(black_box(&inputs), &mut scratch, &mut NoHooks);
                scratch.row(batch - 1)[0]
            });
        });
    }

    let config = C3f2Config::scaled();
    for &batch in &[1usize, 8] {
        let frames: Vec<Tensor> = (0..batch)
            .map(|i| Tensor::full(&config.input_shape(), 0.1 + 0.05 * i as f32))
            .collect();
        group.bench_function(format!("c3f2_scaled_serial_x{batch}"), |b| {
            b.iter(|| {
                let mut sum = 0.0f32;
                for frame in &frames {
                    sum += c3f2.forward(black_box(frame)).data()[0];
                }
                sum
            });
        });
        group.bench_function(format!("c3f2_scaled_batched_x{batch}"), |b| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                c3f2.forward_batch_into(black_box(&frames), &mut scratch, &mut NoHooks);
                scratch.row(batch - 1)[0]
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Integration test: the `figures` binary's CLI contract — strict figure-id
//! validation, artifact emission, `--resume` with zero recomputation, and
//! `--validate`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn figures(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_figures")).args(args).output().expect("spawn figures")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("navft-figures-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn unknown_figure_ids_fail_with_the_valid_id_list() {
    let out = figures(&["frobnicate"]);
    assert!(!out.status.success(), "unknown ids must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("frobnicate"), "stderr names the offender: {stderr}");
    for id in ["fig2", "fig5", "fig10", "ablation"] {
        assert!(stderr.contains(id), "stderr lists valid id {id}: {stderr}");
    }
    // A valid id mixed with an unknown one must still fail (nothing runs).
    let out = figures(&["fig5", "frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn no_figures_requested_fails() {
    let out = figures(&["--scale", "smoke"]);
    assert!(!out.status.success());
}

#[test]
fn resume_without_out_dir_fails() {
    let out = figures(&["--resume", "all"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn bad_jobs_and_scale_values_fail() {
    assert!(!figures(&["--jobs", "0", "all"]).status.success());
    assert!(!figures(&["--jobs", "many", "all"]).status.success());
    assert!(!figures(&["--scale", "huge", "all"]).status.success());
    assert!(!figures(&["--frobnicate", "all"]).status.success());
}

#[test]
fn list_names_every_figure() {
    let out = figures(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["fig2", "fig2hist", "fig3", "fig4", "fig5", "fig7a", "fig8", "fig9", "fig10"] {
        assert!(stdout.lines().any(|l| l == id), "missing {id} in --list");
    }
}

#[test]
fn artifact_run_resumes_with_zero_recomputation_and_validates() {
    let dir = temp_dir("roundtrip");
    let dir_str = dir.to_string_lossy().into_owned();

    // Fresh smoke run of a cheap figure with artifacts.
    let out = figures(&["--scale", "smoke", "--jobs", "2", "--out", &dir_str, "fig2hist"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("executed 2, resumed 0"), "first run executes both cells: {stderr}");
    assert!(dir.join("journal.jsonl").is_file());
    assert!(dir.join("fig2hist.jsonl").is_file());
    assert!(dir.join("fig2hist.txt").is_file());
    let first_artifact = std::fs::read_to_string(dir.join("fig2hist.jsonl")).unwrap();
    let first_stdout = out.stdout.clone();

    // Resume: nothing recomputed, identical artifact and figure tables.
    let out =
        figures(&["--scale", "smoke", "--jobs", "2", "--out", &dir_str, "--resume", "fig2hist"]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("executed 0, resumed 2"), "resume skips every cell: {stderr}");
    assert_eq!(
        std::fs::read_to_string(dir.join("fig2hist.jsonl")).unwrap(),
        first_artifact,
        "resume must rewrite an identical artifact"
    );
    assert_eq!(out.stdout, first_stdout, "resume must reproduce the same tables");

    // The emitted artifacts parse.
    let out = figures(&["--validate", &dir_str]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("parse cleanly"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn validate_rejects_a_corrupt_artifact_directory() {
    let dir = temp_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("fig0.jsonl"), "{\"fp\":").unwrap();
    let out = figures(&["--validate", &dir.to_string_lossy()]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).unwrap();
}

//! CI perf gate: diffs a fresh `BENCH_<rev>.json` snapshot against the
//! checked-in baseline and fails on throughput regressions.
//!
//! Usage:
//!
//! ```text
//! perf_gate --baseline BENCH_abc1234.json --fresh /tmp/fresh.json
//! perf_gate --history BENCH_*.json --fresh /tmp/fresh.json
//! perf_gate --history ... --fresh ... --tolerance 0.25
//! ```
//!
//! `--history` takes every checked-in snapshot (it consumes all following
//! paths, so a shell glob works), orders them oldest → newest by their
//! `unix_time` stamp (legacy snapshots without one sort first, in the order
//! given), prints the per-key throughput trajectory across the whole
//! history plus the fresh snapshot, and gates the fresh snapshot against
//! the **newest** history entry only — older snapshots inform the printed
//! trend, never the pass/fail verdict. `--baseline` is the single-snapshot
//! form of the same gate.
//!
//! The comparison itself lives in [`navft_bench::perf_regressions`], driven
//! by the [`navft_bench::GATED`] section table (`results`, `serve`,
//! `serve_scale`, `training`, `campaign`, `requantize`). A fresh value more
//! than `--tolerance` (default `0.10`, i.e. 10 %) below baseline, a
//! baseline row missing from the fresh snapshot, or a non-finite fresh
//! throughput all fail the gate.

use std::process::ExitCode;

use navft_bench::{order_snapshots, perf_regressions, trend_report};
use navft_core::sweep::json::Json;

const USAGE: &str = "usage: perf_gate (--baseline PATH | --history PATH...) --fresh PATH \
                     [--tolerance FRAC]";

fn main() -> ExitCode {
    let mut baseline: Option<String> = None;
    let mut history: Vec<String> = Vec::new();
    let mut fresh: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => baseline = argv.next(),
            "--history" => {
                while let Some(path) = argv.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    history.push(argv.next().expect("peeked"));
                }
                if history.is_empty() {
                    eprintln!("--history needs at least one snapshot path");
                    return ExitCode::FAILURE;
                }
            }
            "--fresh" => fresh = argv.next(),
            "--tolerance" => {
                let parsed = argv.next().and_then(|t| t.parse::<f64>().ok());
                let Some(t) = parsed.filter(|t| t.is_finite() && (0.0..1.0).contains(t)) else {
                    eprintln!("--tolerance needs a fraction in [0, 1)");
                    return ExitCode::FAILURE;
                };
                tolerance = t;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if baseline.is_some() && !history.is_empty() {
        eprintln!("--baseline and --history are mutually exclusive\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let Some(fresh) = fresh else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(fresh_json) = load(&fresh) else {
        return ExitCode::FAILURE;
    };

    // Resolve the baseline: either the one given path, or the newest
    // snapshot of the ordered history (printing the trajectory on the way).
    let (baseline_label, baseline_json) = if let Some(path) = baseline {
        let Some(json) = load(&path) else {
            return ExitCode::FAILURE;
        };
        (path, json)
    } else if !history.is_empty() {
        let mut snapshots = Vec::with_capacity(history.len());
        for path in history {
            let Some(json) = load(&path) else {
                return ExitCode::FAILURE;
            };
            snapshots.push((path, json));
        }
        let mut ordered = order_snapshots(snapshots);
        let newest = ordered.last().expect("--history is non-empty").clone();
        ordered.push((format!("{fresh} (fresh)"), fresh_json.clone()));
        for line in trend_report(&ordered).lines() {
            eprintln!("[perf_gate] {line}");
        }
        newest
    } else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let failures = perf_regressions(&baseline_json, &fresh_json, tolerance);
    if failures.is_empty() {
        eprintln!(
            "[perf_gate] ok: {fresh} holds every throughput of {baseline_label} within {:.0}%",
            tolerance * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("[perf_gate] {} regression(s) against {baseline_label}:", failures.len());
    for failure in &failures {
        eprintln!("[perf_gate]   {failure}");
    }
    ExitCode::FAILURE
}

/// Reads and parses one snapshot, reporting failures on stderr.
fn load(path: &str) -> Option<Json> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("[perf_gate] cannot read {path}: {error}");
            return None;
        }
    };
    match Json::parse(&text) {
        Ok(json) => Some(json),
        Err(error) => {
            eprintln!("[perf_gate] {path} is not valid snapshot JSON: {error:?}");
            None
        }
    }
}

//! CI perf gate: diffs a fresh `BENCH_<rev>.json` snapshot against the
//! checked-in baseline and fails on throughput regressions.
//!
//! Usage:
//!
//! ```text
//! perf_gate --baseline BENCH_abc1234.json --fresh /tmp/fresh.json
//! perf_gate --baseline ... --fresh ... --tolerance 0.25
//! ```
//!
//! The comparison itself lives in [`navft_bench::perf_regressions`]: the
//! `results` rows gate on `dispatched_rows_per_s` per `(model, backend)`,
//! the `serve` rows on `rows_per_s` per `(model, backend, sessions)`, and
//! the `campaign` rows on `steps_per_s` per `(model, backend, batch)` (the
//! vectorized rollout layer) plus `trials_per_s` per `figure` (one smoke
//! sweep end to end). A fresh value more than `--tolerance` (default
//! `0.10`, i.e. 10 %) below baseline, a baseline row missing from the fresh
//! snapshot, or a non-finite fresh throughput all fail the gate.

use std::process::ExitCode;

use navft_bench::perf_regressions;
use navft_core::sweep::json::Json;

const USAGE: &str = "usage: perf_gate --baseline PATH --fresh PATH [--tolerance FRAC]";

fn main() -> ExitCode {
    let mut baseline: Option<String> = None;
    let mut fresh: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => baseline = argv.next(),
            "--fresh" => fresh = argv.next(),
            "--tolerance" => {
                let parsed = argv.next().and_then(|t| t.parse::<f64>().ok());
                let Some(t) = parsed.filter(|t| t.is_finite() && (0.0..1.0).contains(t)) else {
                    eprintln!("--tolerance needs a fraction in [0, 1)");
                    return ExitCode::FAILURE;
                };
                tolerance = t;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let Some(baseline_json) = load(&baseline) else {
        return ExitCode::FAILURE;
    };
    let Some(fresh_json) = load(&fresh) else {
        return ExitCode::FAILURE;
    };

    let failures = perf_regressions(&baseline_json, &fresh_json, tolerance);
    if failures.is_empty() {
        eprintln!(
            "[perf_gate] ok: {fresh} holds every throughput of {baseline} within {:.0}%",
            tolerance * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("[perf_gate] {} regression(s) against {baseline}:", failures.len());
    for failure in &failures {
        eprintln!("[perf_gate]   {failure}");
    }
    ExitCode::FAILURE
}

/// Reads and parses one snapshot, reporting failures on stderr.
fn load(path: &str) -> Option<Json> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("[perf_gate] cannot read {path}: {error}");
            return None;
        }
    };
    match Json::parse(&text) {
        Ok(json) => Some(json),
        Err(error) => {
            eprintln!("[perf_gate] {path} is not valid snapshot JSON: {error:?}");
            None
        }
    }
}

//! Emits a machine-readable perf snapshot, `BENCH_<rev>.json`, for the
//! batched GEMM forward path (ROADMAP item 5: perf trajectory as data).
//!
//! Usage:
//!
//! ```text
//! perf                       # writes BENCH_<rev>.json to the current dir
//! perf --out perf.json       # explicit output path
//! perf --repeats 15          # more timing repeats (default 9, median kept)
//! ```
//!
//! For each model of the campaigns (the Grid World MLP and the scaled C3F2
//! drone policy) and each numeric backend (`f32`, native Q(1,4,11), `i8`
//! affine), the tool times batch-64 `forward_batch_into` twice: once with
//! the portable scalar tiles forced (`set_force_scalar_kernels(true)`) and
//! once with runtime kernel dispatch enabled. Both passes produce
//! bit-identical outputs (pinned by the equivalence suites); the JSON
//! records the throughput of each and their ratio, so CI and the README
//! table have a committed baseline to compare against.
//!
//! The JSON is rendered with `navft_core::sweep::json` — the same
//! deterministic writer the campaign artifacts use — so snapshots diff
//! cleanly across revisions.

use std::process::ExitCode;
use std::time::Instant;

use navft_bench::parse_jobs;
use navft_core::sweep::json::Json;
use navft_nn::{
    c3f2_scaled, engine_threads, mlp, set_engine_threads, set_force_scalar_kernels,
    simd_kernel_name, I8Network, I8Scratch, I8Tensor, Network, NoHooks, QNetwork, QScratch,
    QTensor, Scratch, Tensor,
};
use navft_qformat::QFormat;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The batch size the throughput contract is pinned at (the campaign's
/// episode batch and the README table's column).
const BATCH: usize = 64;

const USAGE: &str = "usage: perf [--out PATH] [--repeats N] [--threads N]";

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut repeats = 9usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => {
                let Some(path) = argv.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = Some(path);
            }
            "--repeats" => {
                let Some(n) = argv.next().as_deref().and_then(parse_jobs) else {
                    eprintln!("--repeats needs a positive integer");
                    return ExitCode::FAILURE;
                };
                repeats = n;
            }
            "--threads" => {
                let Some(n) = argv.next().as_deref().and_then(parse_jobs) else {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                set_engine_threads(n);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let rev = git_rev();
    let path = out.unwrap_or_else(|| format!("BENCH_{rev}.json"));
    let snapshot = run_benchmarks(&rev, repeats);
    if let Err(error) = std::fs::write(&path, snapshot.render() + "\n") {
        eprintln!("[perf] failed to write {path}: {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("[perf] wrote {path}");
    ExitCode::SUCCESS
}

/// The short git revision, or `"local"` outside a repository.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "local".to_string())
}

/// Median wall-clock seconds of `op` over `repeats` timed runs (after two
/// untimed warmups that fault in the scratch buffers and warm the caches).
fn median_secs(repeats: usize, mut op: impl FnMut()) -> f64 {
    op();
    op();
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times one backend's batch-64 GEMM forward, scalar-forced then
/// dispatched, and returns the JSON row. `forward` runs one full batched
/// pass; `rows_per_pass` is the batch size (throughput denominator).
fn bench_backend(
    model: &str,
    backend: &str,
    repeats: usize,
    rows_per_pass: usize,
    mut forward: impl FnMut(),
) -> Json {
    set_force_scalar_kernels(true);
    let scalar = median_secs(repeats, &mut forward);
    set_force_scalar_kernels(false);
    let dispatched = median_secs(repeats, &mut forward);
    let scalar_rows = rows_per_pass as f64 / scalar;
    let dispatched_rows = rows_per_pass as f64 / dispatched;
    let speedup = scalar / dispatched;
    eprintln!(
        "[perf] {model}/{backend}: scalar {scalar_rows:.0} rows/s, \
         {} {dispatched_rows:.0} rows/s ({speedup:.2}x)",
        simd_kernel_name()
    );
    Json::obj([
        ("model", Json::Str(model.to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("scalar_rows_per_s", Json::num(scalar_rows)),
        ("dispatched_rows_per_s", Json::num(dispatched_rows)),
        ("dispatched_speedup", Json::num(speedup)),
    ])
}

fn run_benchmarks(rev: &str, repeats: usize) -> Json {
    let mut rng = SmallRng::seed_from_u64(0);
    let models: Vec<(&str, Network, Vec<usize>)> = vec![
        ("grid-mlp", mlp(&[100, 32, 4], &mut rng), vec![100]),
        ("c3f2-scaled", c3f2_scaled(&mut rng), vec![1, 31, 31]),
    ];

    let format = QFormat::Q4_11;
    let mut results = Vec::new();
    for (name, network, shape) in &models {
        let mut input_rng = SmallRng::seed_from_u64(0xBE7C);
        let inputs: Vec<Tensor> =
            (0..BATCH).map(|_| Tensor::uniform(shape, 1.0, &mut input_rng)).collect();

        let mut scratch = Scratch::new();
        results.push(bench_backend(name, "f32", repeats, BATCH, || {
            network.forward_batch_into(&inputs, &mut scratch, &mut NoHooks);
        }));

        let qnet = QNetwork::quantize(network, format);
        let qinputs: Vec<QTensor> = inputs.iter().map(|t| QTensor::quantize(t, format)).collect();
        let mut qscratch = QScratch::new();
        results.push(bench_backend(name, &format!("{format}"), repeats, BATCH, || {
            qnet.forward_batch_into(&qinputs, &mut qscratch, &mut NoHooks);
        }));

        let inet = I8Network::quantize(network);
        let iinputs: Vec<I8Tensor> =
            inputs.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();
        let mut iscratch = I8Scratch::new();
        results.push(bench_backend(name, "i8", repeats, BATCH, || {
            inet.forward_batch_into(&iinputs, &mut iscratch, &mut NoHooks);
        }));
    }

    Json::obj([
        ("rev", Json::Str(rev.to_string())),
        ("bench", Json::Str("gemm_forward".to_string())),
        ("batch", Json::num(BATCH as f64)),
        ("repeats", Json::num(repeats as f64)),
        ("kernel", Json::Str(simd_kernel_name().to_string())),
        ("engine_threads", Json::num(engine_threads() as f64)),
        ("results", Json::Arr(results)),
    ])
}

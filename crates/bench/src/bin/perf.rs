//! Emits a machine-readable perf snapshot, `BENCH_<rev>.json`, for the
//! batched GEMM forward path and the `navft-serve` batcher (ROADMAP item 5:
//! perf trajectory as data).
//!
//! Usage:
//!
//! ```text
//! perf                       # writes BENCH_<rev>.json to the current dir
//! perf --out perf.json       # explicit output path
//! perf --repeats 15          # more timing repeats (default 9, median kept)
//! perf --threads 4           # engine worker threads (default 1 = serial)
//! perf --sessions 4096       # concurrent serve sessions (default 1024)
//! perf --scale-sessions 65536 # serve_scale session count (default 32768)
//! ```
//!
//! For each model of the campaigns (the Grid World MLP and the scaled C3F2
//! drone policy) and each numeric backend (`f32`, native Q(1,4,11), `i8`
//! affine), the tool times batch-64 `forward_batch_into_cfg` twice: once
//! with the portable scalar tiles forced and once with runtime kernel
//! dispatch enabled. The scalar/dispatched split is an explicit
//! [`EngineConfig`] per pass — no process-wide toggle is flipped, so a
//! panicking closure cannot leak a scalar-forced engine into later
//! sections. Both passes produce bit-identical outputs (pinned by the
//! equivalence suites); the JSON records the throughput of each and their
//! ratio.
//!
//! A second section drives the `navft-serve` dynamic batcher with `
//! --sessions` concurrent Grid World sessions in lockstep episode rounds
//! (on the `f32` and native fixed-point backends) and records request
//! latency percentiles plus served-row throughput.
//!
//! A third, `campaign` section measures the vectorized rollout layer the
//! figure campaigns run on: environment steps per second at batch widths 1,
//! 16 and 64 for each backend (every step is one row of a batched engine
//! sweep), plus one smoke-scale figure sweep timed end to end in trials per
//! second.
//!
//! A fourth, `requantize` section micro-times the GEMM epilogue seam on the
//! raw-word backends: elements per second of the scalar per-element
//! [`Element::finish`] loop against the batched, runtime-dispatched
//! [`Element::finish_tile`] — the vectorized requantize that folds widened
//! accumulators back into storable words.
//!
//! A fifth, `serve_scale` section stresses the **sharded** daemon at
//! `--scale-sessions` concurrent sessions (default 32 768) for each worker
//! count in {1, 2, 4, 8}, under two open-loop regimes driven by the bursty
//! load generator: `saturated` (zero think time — every session re-arrives
//! the instant its response lands, measuring aggregate capacity in rows/s)
//! and `bursty` (Poisson-ish think times with ramp and spike phases,
//! measuring the coordinated-omission-aware p50/p99/p99.9 tail). Single-core
//! hosts serialize the shard batchers, so the worker sweep measures sharding
//! overhead there rather than speedup; multi-core hosts see the scaling.
//!
//! A sixth, `training` section times the DQN learning loop itself: `learn`
//! steps per second on the Grid World MLP at minibatch 32 and 128, once with
//! the f32 bootstrap target and once with the quantized int8 target snapshot
//! ([`DqnAgent::with_i8_target`]).
//!
//! The JSON is rendered with `navft_core::sweep::json` — the same
//! deterministic writer the campaign artifacts use — so snapshots diff
//! cleanly across revisions, and `perf_gate` can diff a fresh snapshot
//! against the checked-in baseline.

use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use navft_bench::parse_jobs;
use navft_core::sweep::json::Json;
use navft_core::{experiments, Scale};
use navft_gridworld::GridWorld;
use navft_nn::{
    c3f2_scaled, mlp, simd_kernel_name, Element, EngineConfig, HooksFor, I8Network, I8Scratch,
    I8Tensor, Network, NetworkBase, NoHooks, QNetwork, QScratch, QTensor, Scratch, Tensor,
};
use navft_qformat::QFormat;
use navft_rl::{
    rollout, DiscreteEnvironment, DqnAgent, DqnConfig, DummyVecEnv, EpsilonSchedule, EvalElement,
    InferenceFaultMode, RolloutObs,
};
use navft_serve::{
    drive_bursty_load, drive_discrete_episodes, BurstyConfig, LatencyWindow, ServeConfig, Server,
};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The batch size the throughput contract is pinned at (the campaign's
/// episode batch and the README table's column).
const BATCH: usize = 64;

/// Lockstep episode rounds each serve session plays in the latency section.
const SERVE_STEPS: usize = 8;

const USAGE: &str =
    "usage: perf [--out PATH] [--repeats N] [--threads N] [--sessions N] [--scale-sessions N]";

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut repeats = 9usize;
    let mut threads = 1usize;
    let mut sessions = 1024usize;
    let mut scale_sessions = 32_768usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => {
                let Some(path) = argv.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = Some(path);
            }
            "--repeats" => {
                let Some(n) = argv.next().as_deref().and_then(parse_jobs) else {
                    eprintln!("--repeats needs a positive integer");
                    return ExitCode::FAILURE;
                };
                repeats = n;
            }
            "--threads" => {
                let Some(n) = argv.next().as_deref().and_then(parse_jobs) else {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                threads = n;
            }
            "--sessions" => {
                let Some(n) = argv.next().as_deref().and_then(parse_jobs) else {
                    eprintln!("--sessions needs a positive integer");
                    return ExitCode::FAILURE;
                };
                sessions = n;
            }
            "--scale-sessions" => {
                let Some(n) = argv.next().as_deref().and_then(parse_jobs) else {
                    eprintln!("--scale-sessions needs a positive integer");
                    return ExitCode::FAILURE;
                };
                scale_sessions = n;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let rev = git_rev();
    let path = out.unwrap_or_else(|| format!("BENCH_{rev}.json"));
    let snapshot = run_benchmarks(&rev, repeats, threads, sessions, scale_sessions);
    if let Err(error) = std::fs::write(&path, snapshot.render() + "\n") {
        eprintln!("[perf] failed to write {path}: {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("[perf] wrote {path}");
    ExitCode::SUCCESS
}

/// The short git revision, or `"local"` outside a repository.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "local".to_string())
}

/// Median wall-clock seconds of `op` over `repeats` timed runs (after two
/// untimed warmups that fault in the scratch buffers and warm the caches).
fn median_secs(repeats: usize, mut op: impl FnMut()) -> f64 {
    op();
    op();
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times one backend's batch-64 GEMM forward, scalar-forced then
/// dispatched, and returns the JSON row. `forward` runs one full batched
/// pass under the given engine config; the scalar/dispatched split lives
/// entirely in the per-call [`EngineConfig`], so a panic mid-measurement
/// cannot leave a process-wide scalar override behind.
fn bench_backend(
    model: &str,
    backend: &str,
    repeats: usize,
    rows_per_pass: usize,
    threads: usize,
    mut forward: impl FnMut(EngineConfig),
) -> Json {
    let dispatched_config = EngineConfig::default().with_threads(threads);
    let scalar_config = dispatched_config.with_force_scalar(true);
    let scalar = median_secs(repeats, || forward(scalar_config));
    let dispatched = median_secs(repeats, || forward(dispatched_config));
    let scalar_rows = rows_per_pass as f64 / scalar;
    let dispatched_rows = rows_per_pass as f64 / dispatched;
    let speedup = scalar / dispatched;
    eprintln!(
        "[perf] {model}/{backend}: scalar {scalar_rows:.0} rows/s, \
         {} {dispatched_rows:.0} rows/s ({speedup:.2}x), {threads} thread(s)",
        simd_kernel_name()
    );
    Json::obj([
        ("model", Json::Str(model.to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("threads", Json::num(threads as f64)),
        ("scalar_rows_per_s", Json::num(scalar_rows)),
        ("dispatched_rows_per_s", Json::num(dispatched_rows)),
        ("dispatched_speedup", Json::num(speedup)),
    ])
}

/// Serves `sessions` concurrent Grid World sessions through the
/// `navft-serve` dynamic batcher in lockstep episode rounds and returns the
/// latency/throughput JSON row.
fn bench_serve<W>(
    model: &str,
    backend: &str,
    network: NetworkBase<W>,
    world: &GridWorld,
    sessions: usize,
    threads: usize,
) -> Json
where
    W: EvalElement,
    NoHooks: HooksFor<W>,
{
    let config = ServeConfig::default()
        .with_max_batch(BATCH)
        .with_queue_capacity(sessions.max(BATCH))
        .with_engine(EngineConfig::default().with_threads(threads));
    let server = Server::start(network, &[world.num_states()], config);
    let ids: Vec<_> = (0..sessions).map(|_| server.open_clean_session()).collect();
    let mut envs: Vec<GridWorld> = (0..sessions).map(|_| world.clone()).collect();
    let mut latency = LatencyWindow::new();
    let outcome = drive_discrete_episodes(&server, &ids, &mut envs, SERVE_STEPS, &mut latency);
    let stats = server.stats();
    let secs = outcome.elapsed.as_secs_f64();
    let rows_per_s = if secs > 0.0 { outcome.rows as f64 / secs } else { f64::NAN };
    eprintln!(
        "[perf] serve {model}/{backend}: {sessions} sessions, p50 {:.0}us, p99 {:.0}us, \
         {rows_per_s:.0} rows/s (max batch {})",
        latency.p50(),
        latency.p99(),
        stats.max_rows_per_batch
    );
    Json::obj([
        ("model", Json::Str(model.to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("sessions", Json::num(sessions as f64)),
        ("threads", Json::num(threads as f64)),
        ("requests", Json::num(latency.len() as f64)),
        ("p50_us", Json::num(latency.p50())),
        ("p99_us", Json::num(latency.p99())),
        ("rows_per_s", Json::num(rows_per_s)),
        ("max_rows_per_batch", Json::num(stats.max_rows_per_batch as f64)),
    ])
}

/// Sharded worker counts the `serve_scale` section sweeps.
const SCALE_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Open-loop requests each session issues per `serve_scale` regime. Four is
/// the minimum that exercises all three arrival phases (ramp, steady,
/// spike) of the bursty generator.
const SCALE_REQUESTS: usize = 4;

/// One `serve_scale` measurement cell: session/worker/thread counts plus
/// the arrival regime.
struct ScaleCell<'a> {
    model: &'a str,
    backend: &'a str,
    sessions: usize,
    workers: usize,
    threads: usize,
    /// Zero selects the `saturated` regime; non-zero the `bursty` one.
    mean_think: Duration,
}

/// Drives the sharded daemon with one [`ScaleCell`]'s worth of concurrent
/// open-loop sessions and returns the JSON row.
///
/// `mean_think == 0` is the `saturated` regime: every session's next
/// arrival is due the instant its response lands, so the run measures
/// aggregate serving capacity (rows/s) and the percentiles record queueing
/// delay under permanent overload. A non-zero think time is the `bursty`
/// regime: arrivals follow the seeded per-session exponential schedule with
/// ramp and spike phases, and the latency window records the
/// coordinated-omission-aware tail (p50/p99/p99.9 measured from each
/// request's *scheduled* arrival).
fn bench_serve_scale<W>(cell: &ScaleCell, network: &NetworkBase<W>, states: usize) -> Json
where
    W: EvalElement,
    NoHooks: HooksFor<W>,
{
    let &ScaleCell { model, backend, sessions, workers, threads, mean_think } = cell;
    let load = if mean_think.is_zero() { "saturated" } else { "bursty" };
    let config = ServeConfig::default()
        .with_workers(workers)
        .with_max_batch(BATCH)
        .with_queue_capacity(sessions.max(BATCH))
        .with_engine(EngineConfig::default().with_threads(threads));
    let server = Server::start(network.clone(), &[states], config);
    let ids: Vec<_> = (0..sessions).map(|_| server.open_clean_session()).collect();
    let bursty = BurstyConfig {
        requests_per_session: SCALE_REQUESTS,
        mean_think,
        spike_factor: 8.0,
        seed: 0x5CA1E,
    };
    let mut latency = LatencyWindow::new();
    let outcome = drive_bursty_load(&server, &ids, states, &bursty, &mut latency);
    server.shutdown();
    let secs = outcome.elapsed.as_secs_f64();
    let rows_per_s = if secs > 0.0 { outcome.rows as f64 / secs } else { f64::NAN };
    eprintln!(
        "[perf] serve_scale {model}/{backend} {load}: {sessions} sessions x {workers} worker(s), \
         p50 {:.0}us, p99 {:.0}us, p99.9 {:.0}us, {rows_per_s:.0} rows/s, {} retries",
        latency.p50(),
        latency.p99(),
        latency.p999(),
        outcome.retries
    );
    Json::obj([
        ("model", Json::Str(model.to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("load", Json::Str(load.to_string())),
        ("sessions", Json::num(sessions as f64)),
        ("workers", Json::num(workers as f64)),
        ("threads", Json::num(threads as f64)),
        ("requests", Json::num(latency.len() as f64)),
        ("retries", Json::num(outcome.retries as f64)),
        ("p50_us", Json::num(latency.p50())),
        ("p99_us", Json::num(latency.p99())),
        ("p999_us", Json::num(latency.p999())),
        ("rows_per_s", Json::num(rows_per_s)),
    ])
}

/// Minibatch sizes the `training` section times `DqnAgent::learn` at.
const TRAIN_MINIBATCHES: [usize; 2] = [32, 128];

/// `learn` calls per timed sample — enough to stretch one measurement past
/// scheduler noise at the small minibatch.
const TRAIN_STEPS_PER_PASS: usize = 32;

/// Times the DQN learning loop on the Grid World MLP: `learn` steps per
/// second at one minibatch size, with the bootstrap target either on the
/// f32 target network (`backend == "f32"`) or on the quantized int8
/// snapshot (`backend == "i8"`, via [`DqnAgent::with_i8_target`]).
fn bench_training(
    model: &str,
    backend: &str,
    i8_target: bool,
    minibatch: usize,
    repeats: usize,
    threads: usize,
) -> Json {
    let states = 100usize;
    let network = mlp(&[states, 32, 4], &mut SmallRng::seed_from_u64(0xD92));
    let config = DqnConfig { batch_size: minibatch, ..DqnConfig::default() };
    let mut agent =
        DqnAgent::new(network, &[states], EpsilonSchedule::new(1.0, 0.05, 0.99), config)
            .with_engine_config(EngineConfig::default().with_threads(threads));
    if i8_target {
        agent = agent.with_i8_target();
    }

    // Fill the replay buffer with random transitions so every timed `learn`
    // call samples a full minibatch.
    let mut fill_rng = SmallRng::seed_from_u64(0xF111);
    for _ in 0..minibatch.max(512) {
        let state = Tensor::uniform(&[states], 1.0, &mut fill_rng);
        let next = Tensor::uniform(&[states], 1.0, &mut fill_rng);
        let action = (fill_rng.next_u64() % 4) as usize;
        let reward = fill_rng.gen_range(-1.0..1.0);
        let terminal = fill_rng.gen_bool(0.1);
        agent.observe(&state, action, reward, &next, terminal);
    }

    let mut learn_rng = SmallRng::seed_from_u64(0x1EA2);
    let secs = median_secs(repeats, || {
        for _ in 0..TRAIN_STEPS_PER_PASS {
            agent.learn(&mut learn_rng);
        }
    });
    let steps_per_s = TRAIN_STEPS_PER_PASS as f64 / secs;
    eprintln!(
        "[perf] training {model}/{backend} minibatch {minibatch}: {steps_per_s:.0} learn steps/s"
    );
    Json::obj([
        ("model", Json::Str(model.to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("minibatch", Json::num(minibatch as f64)),
        ("threads", Json::num(threads as f64)),
        ("learn_steps_per_s", Json::num(steps_per_s)),
    ])
}

/// The rollout batch widths the campaign section is pinned at: serial, a
/// mid-size wave and the campaign's episode batch.
const ROLLOUT_BATCHES: [usize; 3] = [1, 16, 64];

/// Episodes and step limit of each timed rollout pass (identical across
/// batch widths, so steps/s rows are directly comparable).
const ROLLOUT_EPISODES: usize = 64;
const ROLLOUT_MAX_STEPS: usize = 32;

/// Times vectorized rollouts of `network` over Grid World rows at one batch
/// width and returns the campaign JSON row. Throughput is environment steps
/// per second — every step is one row of a `forward_batch_into_cfg` sweep.
fn bench_rollout<W>(
    model: &str,
    backend: &str,
    network: &NetworkBase<W>,
    world: &GridWorld,
    batch: usize,
    repeats: usize,
    threads: usize,
) -> Json
where
    W: EvalElement,
    usize: RolloutObs<W>,
    NoHooks: HooksFor<W>,
{
    let config = EngineConfig::default().with_threads(threads);
    let mut steps = 0usize;
    let secs = median_secs(repeats, || {
        let mut venv = DummyVecEnv::from_prototype(world, batch);
        let mut rng = SmallRng::seed_from_u64(0xCA4);
        let tapes = rollout(
            &mut venv,
            network,
            ROLLOUT_EPISODES,
            ROLLOUT_MAX_STEPS,
            &InferenceFaultMode::None,
            &mut rng,
            |_| NoHooks,
            config,
        );
        steps = tapes.iter().map(|tape| tape.rewards.len()).sum();
    });
    let steps_per_s = steps as f64 / secs;
    eprintln!("[perf] rollout {model}/{backend} batch {batch}: {steps_per_s:.0} steps/s");
    Json::obj([
        ("model", Json::Str(model.to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("batch", Json::num(batch as f64)),
        ("threads", Json::num(threads as f64)),
        ("episodes", Json::num(ROLLOUT_EPISODES as f64)),
        ("steps_per_s", Json::num(steps_per_s)),
    ])
}

/// Accumulators per requantize pass, and inner rounds per timed sample —
/// together they stretch one epilogue measurement to a stable ~1 ms.
const REQUANT_ELEMS: usize = 1 << 14;
const REQUANT_ROUNDS: usize = 64;

/// Micro-times one backend's GEMM requantize epilogue over a fixed block of
/// accumulators: the scalar per-element [`Element::finish`] loop against the
/// batched [`Element::finish_tile`] seam (runtime-dispatched SIMD). The two
/// are bit-identical by contract; the row records each in elements/s.
fn bench_requantize<E: Element>(
    backend: &str,
    ctx: E::Ctx,
    accs: &[E::Acc],
    repeats: usize,
) -> Json {
    let mut out = vec![E::default(); accs.len()];
    let scalar = median_secs(repeats, || {
        for _ in 0..REQUANT_ROUNDS {
            for (value, &acc) in out.iter_mut().zip(accs.iter()) {
                *value = E::finish(acc, ctx);
            }
            std::hint::black_box(&mut out);
        }
    });
    let dispatched = median_secs(repeats, || {
        for _ in 0..REQUANT_ROUNDS {
            E::finish_tile(ctx, accs, &mut out);
            std::hint::black_box(&mut out);
        }
    });
    let elems = (accs.len() * REQUANT_ROUNDS) as f64;
    let scalar_elems = elems / scalar;
    let dispatched_elems = elems / dispatched;
    let speedup = scalar / dispatched;
    eprintln!(
        "[perf] requantize {backend}: scalar {scalar_elems:.0} elems/s,          {} {dispatched_elems:.0} elems/s ({speedup:.2}x)",
        simd_kernel_name()
    );
    Json::obj([
        ("backend", Json::Str(backend.to_string())),
        ("elems", Json::num(accs.len() as f64)),
        ("scalar_elems_per_s", Json::num(scalar_elems)),
        ("dispatched_elems_per_s", Json::num(dispatched_elems)),
        ("dispatched_speedup", Json::num(speedup)),
    ])
}

/// Times one smoke-scale figure sweep end to end (training and batched
/// evaluation included) and returns the campaign JSON row in trials/s.
fn bench_sweep_trials(figure: &str, repeats: usize, threads: usize) -> Json {
    let trials: usize =
        experiments::fig5::sweep(Scale::Smoke).cell_specs().map(|s| s.repetitions()).sum();
    let secs = median_secs(repeats.min(3), || {
        let _ = experiments::fig5::sweep(Scale::Smoke).collect(threads);
    });
    let trials_per_s = trials as f64 / secs;
    eprintln!("[perf] sweep {figure}@smoke: {trials} trials, {trials_per_s:.1} trials/s");
    Json::obj([
        ("figure", Json::Str(figure.to_string())),
        ("scale", Json::Str("smoke".to_string())),
        ("threads", Json::num(threads as f64)),
        ("trials", Json::num(trials as f64)),
        ("trials_per_s", Json::num(trials_per_s)),
    ])
}

fn run_benchmarks(
    rev: &str,
    repeats: usize,
    threads: usize,
    sessions: usize,
    scale_sessions: usize,
) -> Json {
    let mut rng = SmallRng::seed_from_u64(0);
    let models: Vec<(&str, Network, Vec<usize>)> = vec![
        ("grid-mlp", mlp(&[100, 32, 4], &mut rng), vec![100]),
        ("c3f2-scaled", c3f2_scaled(&mut rng), vec![1, 31, 31]),
    ];

    let format = QFormat::Q4_11;
    let mut results = Vec::new();
    for (name, network, shape) in &models {
        let mut input_rng = SmallRng::seed_from_u64(0xBE7C);
        let inputs: Vec<Tensor> =
            (0..BATCH).map(|_| Tensor::uniform(shape, 1.0, &mut input_rng)).collect();

        let mut scratch = Scratch::new();
        results.push(bench_backend(name, "f32", repeats, BATCH, threads, |config| {
            network.forward_batch_into_cfg(&inputs, &mut scratch, &mut NoHooks, config);
        }));

        let qnet = QNetwork::quantize(network, format);
        let qinputs: Vec<QTensor> = inputs.iter().map(|t| QTensor::quantize(t, format)).collect();
        let mut qscratch = QScratch::new();
        results.push(bench_backend(
            name,
            &format!("{format}"),
            repeats,
            BATCH,
            threads,
            |config| {
                qnet.forward_batch_into_cfg(&qinputs, &mut qscratch, &mut NoHooks, config);
            },
        ));

        let inet = I8Network::quantize(network);
        let iinputs: Vec<I8Tensor> =
            inputs.iter().map(|t| I8Tensor::quantize(t, inet.affine())).collect();
        let mut iscratch = I8Scratch::new();
        results.push(bench_backend(name, "i8", repeats, BATCH, threads, |config| {
            inet.forward_batch_into_cfg(&iinputs, &mut iscratch, &mut NoHooks, config);
        }));
    }

    // Serve latency section: the Grid World policy under concurrent
    // sessions, once per backend that the campaigns serve.
    let mut world_rng = SmallRng::seed_from_u64(0x5EED);
    let world = GridWorld::random(10, 0.2, &mut world_rng);
    let policy = mlp(&[world.num_states(), 32, 4], &mut SmallRng::seed_from_u64(1));
    let qpolicy = QNetwork::quantize(&policy, format);
    let ipolicy = I8Network::quantize(&policy);
    let serve = vec![
        bench_serve("grid-mlp", "f32", policy.clone(), &world, sessions, threads),
        bench_serve("grid-mlp", &format!("{format}"), qpolicy.clone(), &world, sessions, threads),
    ];

    // Serve-scale section: the sharded daemon at `--scale-sessions`
    // concurrent open-loop sessions, per worker count, in the saturated
    // (capacity) and bursty (tail latency) regimes.
    let states = world.num_states();
    let mut serve_scale = Vec::new();
    for &workers in &SCALE_WORKERS {
        for mean_think in [Duration::ZERO, Duration::from_millis(100)] {
            let cell = ScaleCell {
                model: "grid-mlp",
                backend: "f32",
                sessions: scale_sessions,
                workers,
                threads,
                mean_think,
            };
            serve_scale.push(bench_serve_scale(&cell, &policy, states));
        }
    }

    // Training section: DQN `learn` steps/s on the Grid World MLP, f32 and
    // int8 bootstrap targets at both minibatch sizes.
    let mut training = Vec::new();
    for &minibatch in &TRAIN_MINIBATCHES {
        training.push(bench_training("grid-mlp", "f32", false, minibatch, repeats, threads));
        training.push(bench_training("grid-mlp", "i8", true, minibatch, repeats, threads));
    }

    // Campaign section: vectorized environment rollouts (steps/s per backend
    // and batch width) plus one smoke figure sweep end to end (trials/s).
    let mut campaign = Vec::new();
    for &batch in &ROLLOUT_BATCHES {
        campaign.push(bench_rollout("grid-mlp", "f32", &policy, &world, batch, repeats, threads));
        campaign.push(bench_rollout(
            "grid-mlp",
            &format!("{format}"),
            &qpolicy,
            &world,
            batch,
            repeats,
            threads,
        ));
        campaign.push(bench_rollout("grid-mlp", "i8", &ipolicy, &world, batch, repeats, threads));
    }
    campaign.push(bench_sweep_trials("fig5", repeats, threads));

    // Requantize epilogue micro-section: accumulator magnitudes spread over
    // the full widened range (random shift of a full-width draw), fixed per
    // backend so the scalar and dispatched passes fold identical blocks.
    let mut acc_rng = SmallRng::seed_from_u64(0xACC5);
    let q_accs: Vec<i64> = (0..REQUANT_ELEMS)
        .map(|_| (acc_rng.next_u64() as i64) >> (acc_rng.next_u64() % 64))
        .collect();
    let i8_accs: Vec<i32> = (0..REQUANT_ELEMS).map(|_| acc_rng.next_u64() as i32).collect();
    let requantize = vec![
        bench_requantize::<i32>(&format!("{}", QFormat::Q4_11), QFormat::Q4_11, &q_accs, repeats),
        bench_requantize::<i32>(&format!("{}", QFormat::Q7_8), QFormat::Q7_8, &q_accs, repeats),
        bench_requantize::<i8>("i8", navft_nn::I8Affine { scale: 1.0 / 127.0 }, &i8_accs, repeats),
    ];

    // Snapshot creation time: how `perf_gate --history` orders checked-in
    // snapshots from oldest to newest without trusting filenames.
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|since| since.as_secs() as f64)
        .unwrap_or(0.0);

    Json::obj([
        ("rev", Json::Str(rev.to_string())),
        ("bench", Json::Str("gemm_forward".to_string())),
        ("unix_time", Json::num(unix_time)),
        ("batch", Json::num(BATCH as f64)),
        ("repeats", Json::num(repeats as f64)),
        ("kernel", Json::Str(simd_kernel_name().to_string())),
        ("engine_threads", Json::num(threads as f64)),
        ("results", Json::Arr(results)),
        ("serve", Json::Arr(serve)),
        ("serve_scale", Json::Arr(serve_scale)),
        ("training", Json::Arr(training)),
        ("campaign", Json::Arr(campaign)),
        ("requantize", Json::Arr(requantize)),
    ])
}

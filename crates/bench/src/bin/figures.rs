//! Regenerates the paper's figures as plain-text tables and machine-readable
//! JSONL artifacts on the shared work-stealing campaign scheduler.
//!
//! Usage:
//!
//! ```text
//! figures all                        # every figure at the default (quick) scale
//! figures fig5 fig10                 # selected figures
//! figures --scale smoke all          # smoke-sized campaign (seconds)
//! figures --scale paper --jobs 32 \
//!         --out artifacts all        # paper-sized campaign with artifacts
//! figures --out artifacts --resume all  # skip cells already in the journal
//! figures --validate artifacts       # check every emitted artifact parses
//! figures --list                     # list available figure ids
//! ```
//!
//! `--out <dir>` streams every completed cell to `<dir>/journal.jsonl` and
//! writes per-figure `<figure>.jsonl` + `<figure>.txt` files; `--resume`
//! skips cells whose fingerprint already has a journal record, so an
//! interrupted paper-scale run picks up where it left off. `--jobs N`
//! overrides the scale's worker-thread default; it controls *trial-level*
//! parallelism only and composes multiplicatively with the per-trial
//! inference engine's [`EngineConfig::threads`] (held at the single-threaded
//! default here), so up to `jobs × engine.threads` threads can be live at
//! once. The JSONL artifacts are bit-identical for any `--jobs` value and
//! any engine config.

use std::path::PathBuf;
use std::process::ExitCode;

use navft_bench::{parse_jobs, parse_scale};
use navft_core::sweep::{artifact, run_sweeps, RunOptions};
use navft_core::{experiments, Scale};
use navft_nn::EngineConfig;

struct Args {
    scale: Scale,
    jobs: Option<usize>,
    out_dir: Option<PathBuf>,
    resume: bool,
    requested: Vec<String>,
}

const USAGE: &str = "usage: figures [--scale smoke|quick|paper] [--jobs N] [--out DIR] \
                     [--resume] [--list] [--validate DIR] <figure-id>... | all";

fn main() -> ExitCode {
    let mut args = Args {
        scale: Scale::Quick,
        jobs: None,
        out_dir: None,
        resume: false,
        requested: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(value) = argv.next() else {
                    eprintln!("--scale needs a value (smoke | quick | paper)");
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = parse_scale(&value) else {
                    eprintln!("unknown scale {value:?} (expected smoke | quick | paper)");
                    return ExitCode::FAILURE;
                };
                args.scale = parsed;
            }
            "--jobs" => {
                let Some(jobs) = argv.next().as_deref().and_then(parse_jobs) else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                args.jobs = Some(jobs);
            }
            "--out" => {
                let Some(dir) = argv.next() else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                args.out_dir = Some(PathBuf::from(dir));
            }
            "--resume" => args.resume = true,
            "--validate" => {
                let Some(dir) = argv.next() else {
                    eprintln!("--validate needs a directory");
                    return ExitCode::FAILURE;
                };
                return validate(&PathBuf::from(dir));
            }
            "--list" => {
                for id in experiments::figure_ids() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other => args.requested.push(other.to_string()),
        }
    }
    run(args)
}

fn validate(dir: &std::path::Path) -> ExitCode {
    match artifact::validate_dir(dir) {
        Ok(records) => {
            println!("[figures] {records} artifact records in {} parse cleanly", dir.display());
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("[figures] artifact validation failed: {error}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> ExitCode {
    if args.requested.is_empty() {
        eprintln!("nothing to do: pass figure ids or `all` (see --list)");
        return ExitCode::FAILURE;
    }
    let valid_ids = experiments::figure_ids();
    let unknown: Vec<&String> = args
        .requested
        .iter()
        .filter(|r| r.as_str() != "all" && !valid_ids.contains(&r.as_str()))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown figure id(s) {unknown:?}; valid ids are: all, {}", valid_ids.join(", "));
        return ExitCode::FAILURE;
    }
    if args.resume && args.out_dir.is_none() {
        eprintln!("--resume needs --out DIR (the journal lives in the artifact directory)");
        return ExitCode::FAILURE;
    }

    let run_all = args.requested.iter().any(|r| r == "all");
    let sweeps: Vec<_> = experiments::all_sweeps(args.scale)
        .into_iter()
        .filter(|sweep| run_all || args.requested.iter().any(|r| r == sweep.id()))
        .collect();

    let threads = args.scale.threads_or(args.jobs);
    // Trial-level parallelism only: each trial's rollouts run with the default
    // single-threaded engine, so artifacts stay byte-identical at any --jobs.
    let options = RunOptions {
        threads,
        engine: EngineConfig::default(),
        out_dir: args.out_dir.clone(),
        resume: args.resume,
        progress: true,
    };
    let total_cells: usize = sweeps.iter().map(|s| s.len()).sum();
    eprintln!(
        "[figures] running {} figure(s), {total_cells} cells at {:?} scale on {threads} thread(s)...",
        sweeps.len(),
        args.scale
    );
    let start = std::time::Instant::now();
    let report = match run_sweeps(sweeps, &options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("[figures] artifact IO failed: {error}");
            return ExitCode::FAILURE;
        }
    };
    for (_, figures) in &report.figures {
        for figure in figures {
            println!("{figure}");
        }
    }
    eprintln!(
        "[figures] cells: executed {}, resumed {}, total {} in {:.1} s",
        report.executed_cells,
        report.resumed_cells,
        report.total_cells,
        start.elapsed().as_secs_f64()
    );
    if let Some(dir) = &args.out_dir {
        eprintln!("[figures] artifacts written to {}", dir.display());
    }
    ExitCode::SUCCESS
}

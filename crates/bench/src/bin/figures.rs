//! Regenerates the paper's figures as plain-text tables.
//!
//! Usage:
//!
//! ```text
//! figures all                  # every figure at the default (quick) scale
//! figures fig5 fig10           # selected figures
//! figures --scale smoke all    # smoke-sized campaign (seconds)
//! figures --scale paper fig2   # paper-sized campaign (hours)
//! figures --list               # list available figure ids
//! ```

use std::process::ExitCode;

use navft_bench::parse_scale;
use navft_core::{experiments, Scale};

fn main() -> ExitCode {
    let mut scale = Scale::Quick;
    let mut requested: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(value) = args.next() else {
                    eprintln!("--scale needs a value (smoke | quick | paper)");
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = parse_scale(&value) else {
                    eprintln!("unknown scale {value:?} (expected smoke | quick | paper)");
                    return ExitCode::FAILURE;
                };
                scale = parsed;
            }
            "--list" => {
                for id in experiments::figure_ids() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale smoke|quick|paper] [--list] <figure-id>... | all"
                );
                return ExitCode::SUCCESS;
            }
            other => requested.push(other.to_string()),
        }
    }
    if requested.is_empty() {
        eprintln!("nothing to do: pass figure ids or `all` (see --list)");
        return ExitCode::FAILURE;
    }

    let drivers = experiments::all_figures(scale);
    let run_all = requested.iter().any(|r| r == "all");
    let mut matched = 0;
    for (id, driver) in drivers {
        if run_all || requested.iter().any(|r| r == id) {
            matched += 1;
            eprintln!("[figures] running {id} at {scale:?} scale...");
            let start = std::time::Instant::now();
            for figure in driver(scale) {
                println!("{figure}");
            }
            eprintln!("[figures] {id} finished in {:.1} s", start.elapsed().as_secs_f64());
        }
    }
    if matched == 0 {
        eprintln!("no figure matched {requested:?}; use --list to see the available ids");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Benchmark and figure-regeneration harness for the navft workspace.
//!
//! * The `figures` binary regenerates every figure of the paper's evaluation
//!   as plain-text tables and JSONL artifacts: `cargo run --release -p
//!   navft-bench --bin figures -- all` (or a single figure id, e.g. `fig5`;
//!   add `--scale smoke|quick|paper`, `--jobs N`, `--out DIR` and
//!   `--resume`). All requested figures' campaign cells run on one shared
//!   work-stealing scheduler; see `navft_core::sweep`.
//! * The Criterion benches (`cargo bench -p navft-bench`) time representative
//!   cells of each experiment so regressions in the simulator or the
//!   fault-injection tool-chain are visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use navft_core::sweep::json::Json;
use navft_core::Scale;

/// Parses a `--scale` argument value.
///
/// # Examples
///
/// ```
/// use navft_bench::parse_scale;
/// use navft_core::Scale;
///
/// assert_eq!(parse_scale("smoke"), Some(Scale::Smoke));
/// assert_eq!(parse_scale("quick"), Some(Scale::Quick));
/// assert_eq!(parse_scale("paper"), Some(Scale::Paper));
/// assert_eq!(parse_scale("huge"), None);
/// ```
pub fn parse_scale(text: &str) -> Option<Scale> {
    match text.to_ascii_lowercase().as_str() {
        "smoke" => Some(Scale::Smoke),
        "quick" => Some(Scale::Quick),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// Parses a `--jobs` argument value: a *positive* worker-thread count.
///
/// `0` is rejected rather than silently falling back to the scale default —
/// [`Scale::threads_or`] treats `Some(0)` as "unset", so accepting it at the
/// CLI would turn an explicit (likely erroneous) request into a surprise
/// thread count.
///
/// # Examples
///
/// ```
/// use navft_bench::parse_jobs;
///
/// assert_eq!(parse_jobs("4"), Some(4));
/// assert_eq!(parse_jobs("0"), None);
/// assert_eq!(parse_jobs("-1"), None);
/// assert_eq!(parse_jobs("many"), None);
/// ```
pub fn parse_jobs(text: &str) -> Option<usize> {
    text.parse::<usize>().ok().filter(|&n| n > 0)
}

/// Compares a fresh `BENCH_<rev>.json` snapshot against a checked-in
/// baseline and returns one message per regression (empty = gate passes).
///
/// Three sections are diffed, each on its throughput metric:
///
/// * `results` rows, keyed by `(model, backend)`, on
///   `dispatched_rows_per_s` — the batched GEMM forward path;
/// * `serve` rows, keyed by `(model, backend, sessions)`, on `rows_per_s`
///   — the dynamic batcher's served-row throughput;
/// * `campaign` rows, gated twice: rollout rows keyed by
///   `(model, backend, batch)` on `steps_per_s` (the vectorized environment
///   rollout layer) and figure rows keyed by `figure` on `trials_per_s`
///   (one smoke sweep end to end). Rows that never recorded a given metric
///   are skipped, so the two passes each gate only their own row kind;
/// * `requantize` rows, keyed by `backend`, on `dispatched_elems_per_s` —
///   the batched GEMM requantize epilogue micro-benchmark.
///
/// A baseline row that is absent from the fresh snapshot is a failure (a
/// silently dropped benchmark would otherwise pass the gate forever), as is
/// a non-finite fresh throughput (JSON `null` parses back as NaN, and every
/// NaN comparison would otherwise read as "no regression"). Rows that exist
/// only in the fresh snapshot are new coverage, not failures. `tolerance`
/// is the allowed fractional drop: `0.10` fails anything more than 10 %
/// below baseline.
pub fn perf_regressions(baseline: &Json, fresh: &Json, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    gate_section(
        baseline,
        fresh,
        "results",
        &["model", "backend"],
        "dispatched_rows_per_s",
        tolerance,
        &mut failures,
    );
    gate_section(
        baseline,
        fresh,
        "serve",
        &["model", "backend", "sessions"],
        "rows_per_s",
        tolerance,
        &mut failures,
    );
    gate_section(
        baseline,
        fresh,
        "campaign",
        &["model", "backend", "batch"],
        "steps_per_s",
        tolerance,
        &mut failures,
    );
    gate_section(
        baseline,
        fresh,
        "campaign",
        &["figure"],
        "trials_per_s",
        tolerance,
        &mut failures,
    );
    gate_section(
        baseline,
        fresh,
        "requantize",
        &["backend"],
        "dispatched_elems_per_s",
        tolerance,
        &mut failures,
    );
    failures
}

/// Diffs one snapshot section (an array of JSON object rows) on `metric`.
fn gate_section(
    baseline: &Json,
    fresh: &Json,
    section: &str,
    key_fields: &[&str],
    metric: &str,
    tolerance: f64,
    failures: &mut Vec<String>,
) {
    let rows = |snapshot: &Json| -> Vec<Json> {
        match snapshot.get(section) {
            Some(Json::Arr(rows)) => rows.clone(),
            _ => Vec::new(),
        }
    };
    let row_key = |row: &Json| -> String {
        key_fields
            .iter()
            .map(|field| match row.get(field) {
                Some(Json::Str(s)) => s.clone(),
                Some(Json::Num(n)) => format!("{n}"),
                _ => "?".to_string(),
            })
            .collect::<Vec<_>>()
            .join("/")
    };

    let fresh_rows = rows(fresh);
    for base_row in rows(baseline) {
        let key = row_key(&base_row);
        let Some(base_metric) = base_row.get(metric).and_then(Json::as_f64) else {
            continue; // baseline row never recorded this metric: nothing to gate
        };
        if !base_metric.is_finite() {
            continue;
        }
        let Some(fresh_row) = fresh_rows.iter().find(|row| row_key(row) == key) else {
            failures.push(format!("{section} {key}: row missing from the fresh snapshot"));
            continue;
        };
        let fresh_metric = fresh_row.get(metric).and_then(Json::as_f64).unwrap_or(f64::NAN);
        if !fresh_metric.is_finite() {
            failures.push(format!("{section} {key}: {metric} is non-finite in the fresh snapshot"));
            continue;
        }
        let floor = base_metric * (1.0 - tolerance);
        if fresh_metric < floor {
            failures.push(format!(
                "{section} {key}: {metric} regressed {:.1}% ({fresh_metric:.0} vs baseline {base_metric:.0}, floor {floor:.0})",
                100.0 * (1.0 - fresh_metric / base_metric)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_is_case_insensitive() {
        assert_eq!(parse_scale("SMOKE"), Some(Scale::Smoke));
        assert_eq!(parse_scale("Quick"), Some(Scale::Quick));
        assert_eq!(parse_scale(""), None);
    }

    fn snapshot(text: &str) -> Json {
        Json::parse(text).expect("test snapshot parses")
    }

    #[test]
    fn matching_snapshots_pass_the_gate() {
        let base = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":1000.0}],
                "serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":500.0}]}"#,
        );
        assert_eq!(perf_regressions(&base, &base, 0.10), Vec::<String>::new());
    }

    #[test]
    fn drops_beyond_tolerance_fail_and_small_jitter_passes() {
        let base = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":1000.0}]}"#,
        );
        let jitter = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":905.0}]}"#,
        );
        assert!(perf_regressions(&base, &jitter, 0.10).is_empty(), "9.5% down is within 10%");
        let slow = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":850.0}]}"#,
        );
        let failures = perf_regressions(&base, &slow, 0.10);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("results m/f32"), "{failures:?}");
        assert!(perf_regressions(&base, &slow, 0.20).is_empty(), "a looser gate admits it");
    }

    #[test]
    fn missing_rows_and_non_finite_throughput_fail() {
        let base = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":1000.0}],
                "serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":500.0}]}"#,
        );
        let empty = snapshot(r#"{"results":[],"serve":[]}"#);
        let failures = perf_regressions(&base, &empty, 0.10);
        assert_eq!(failures.len(), 2, "both sections report the missing row: {failures:?}");
        assert!(failures.iter().all(|f| f.contains("missing")));

        // `null` throughput parses back as NaN; the gate must fail it, not
        // let the NaN comparison read as "fine".
        let nan = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":null}],
                "serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":500.0}]}"#,
        );
        let failures = perf_regressions(&base, &nan, 0.10);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("non-finite"), "{failures:?}");
    }

    #[test]
    fn serve_rows_key_on_session_count_and_new_rows_are_not_failures() {
        let base = snapshot(
            r#"{"serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":500.0}]}"#,
        );
        // Fresh snapshot serves a different session count: the baseline row
        // is missing, and the new row is not itself a failure.
        let other = snapshot(
            r#"{"serve":[{"model":"m","backend":"f32","sessions":2048,"rows_per_s":900.0}]}"#,
        );
        let failures = perf_regressions(&base, &other, 0.10);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("m/f32/1024"), "{failures:?}");
        // Same count again: passes, and extra fresh rows are ignored.
        let grown = snapshot(
            r#"{"serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":495.0},
                        {"model":"m","backend":"i8","sessions":1024,"rows_per_s":100.0}]}"#,
        );
        assert!(perf_regressions(&base, &grown, 0.10).is_empty());
    }

    #[test]
    fn old_baselines_without_a_serve_section_still_gate_results() {
        let base =
            snapshot(r#"{"results":[{"model":"m","backend":"i8","dispatched_rows_per_s":10.0}]}"#);
        let fresh = snapshot(
            r#"{"results":[{"model":"m","backend":"i8","dispatched_rows_per_s":4.0}],
                "serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":1.0}]}"#,
        );
        let failures = perf_regressions(&base, &fresh, 0.10);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{failures:?}");
    }

    #[test]
    fn campaign_rows_gate_rollout_steps_and_sweep_trials_independently() {
        let base = snapshot(
            r#"{"campaign":[
                {"model":"m","backend":"f32","batch":64,"steps_per_s":1000.0},
                {"figure":"fig5","scale":"smoke","trials_per_s":10.0}]}"#,
        );
        assert_eq!(perf_regressions(&base, &base, 0.10), Vec::<String>::new());

        // A rollout regression is caught by the steps/s pass alone.
        let slow_rollout = snapshot(
            r#"{"campaign":[
                {"model":"m","backend":"f32","batch":64,"steps_per_s":500.0},
                {"figure":"fig5","scale":"smoke","trials_per_s":10.0}]}"#,
        );
        let failures = perf_regressions(&base, &slow_rollout, 0.10);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("m/f32/64"), "{failures:?}");
        assert!(failures[0].contains("steps_per_s"), "{failures:?}");

        // A sweep regression is caught by the trials/s pass alone.
        let slow_sweep = snapshot(
            r#"{"campaign":[
                {"model":"m","backend":"f32","batch":64,"steps_per_s":1000.0},
                {"figure":"fig5","scale":"smoke","trials_per_s":2.0}]}"#,
        );
        let failures = perf_regressions(&base, &slow_sweep, 0.10);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("fig5"), "{failures:?}");
        assert!(failures[0].contains("trials_per_s"), "{failures:?}");

        // Pre-campaign baselines gate nothing new.
        let old = snapshot(r#"{"results":[]}"#);
        assert!(perf_regressions(&old, &base, 0.10).is_empty());
    }

    #[test]
    fn requantize_rows_gate_the_dispatched_epilogue_throughput() {
        let base =
            snapshot(r#"{"requantize":[{"backend":"q4.11","dispatched_elems_per_s":1000.0}]}"#);
        assert_eq!(perf_regressions(&base, &base, 0.10), Vec::<String>::new());
        let slow =
            snapshot(r#"{"requantize":[{"backend":"q4.11","dispatched_elems_per_s":500.0}]}"#);
        let failures = perf_regressions(&base, &slow, 0.10);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("requantize q4.11"), "{failures:?}");
        // Baselines predating the section gate nothing new.
        let old = snapshot(r#"{"results":[]}"#);
        assert!(perf_regressions(&old, &base, 0.10).is_empty());
    }

    #[test]
    fn jobs_parsing_rejects_zero_and_garbage() {
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs("32"), Some(32));
        assert_eq!(parse_jobs("0"), None, "`--jobs 0` must fail loudly, not fall back");
        assert_eq!(parse_jobs("-4"), None);
        assert_eq!(parse_jobs("4.5"), None);
        assert_eq!(parse_jobs(""), None);
    }
}

//! Benchmark and figure-regeneration harness for the navft workspace.
//!
//! * The `figures` binary regenerates every figure of the paper's evaluation
//!   as plain-text tables and JSONL artifacts: `cargo run --release -p
//!   navft-bench --bin figures -- all` (or a single figure id, e.g. `fig5`;
//!   add `--scale smoke|quick|paper`, `--jobs N`, `--out DIR` and
//!   `--resume`). All requested figures' campaign cells run on one shared
//!   work-stealing scheduler; see `navft_core::sweep`.
//! * The Criterion benches (`cargo bench -p navft-bench`) time representative
//!   cells of each experiment so regressions in the simulator or the
//!   fault-injection tool-chain are visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use navft_core::sweep::json::Json;
use navft_core::Scale;

/// Parses a `--scale` argument value.
///
/// # Examples
///
/// ```
/// use navft_bench::parse_scale;
/// use navft_core::Scale;
///
/// assert_eq!(parse_scale("smoke"), Some(Scale::Smoke));
/// assert_eq!(parse_scale("quick"), Some(Scale::Quick));
/// assert_eq!(parse_scale("paper"), Some(Scale::Paper));
/// assert_eq!(parse_scale("huge"), None);
/// ```
pub fn parse_scale(text: &str) -> Option<Scale> {
    match text.to_ascii_lowercase().as_str() {
        "smoke" => Some(Scale::Smoke),
        "quick" => Some(Scale::Quick),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// Parses a `--jobs` argument value: a *positive* worker-thread count.
///
/// `0` is rejected rather than silently falling back to the scale default —
/// [`Scale::threads_or`] treats `Some(0)` as "unset", so accepting it at the
/// CLI would turn an explicit (likely erroneous) request into a surprise
/// thread count.
///
/// # Examples
///
/// ```
/// use navft_bench::parse_jobs;
///
/// assert_eq!(parse_jobs("4"), Some(4));
/// assert_eq!(parse_jobs("0"), None);
/// assert_eq!(parse_jobs("-1"), None);
/// assert_eq!(parse_jobs("many"), None);
/// ```
pub fn parse_jobs(text: &str) -> Option<usize> {
    text.parse::<usize>().ok().filter(|&n| n > 0)
}

/// One gated snapshot comparison: which section array to diff, the fields
/// that form a row's identity, and the throughput metric the gate floors.
///
/// The same table drives both the regression gate ([`perf_regressions`])
/// and the trend report ([`trend_report`]), so adding a section here gives
/// it a floor *and* a trajectory line at once.
pub struct GateSpec {
    /// Top-level snapshot key holding an array of JSON object rows.
    pub section: &'static str,
    /// Fields whose values (joined with `/`) identify a row across
    /// snapshots.
    pub key_fields: &'static [&'static str],
    /// The metric compared against the baseline floor.
    pub metric: &'static str,
}

/// Every gated section/metric pair of a `BENCH_<rev>.json` snapshot.
///
/// * `results` — the batched GEMM forward path, per `(model, backend)`;
/// * `serve` — the dynamic batcher's served-row throughput, per
///   `(model, backend, sessions)`;
/// * `serve_scale` — the sharded daemon under ≥32k open-loop sessions, per
///   `(model, backend, load, sessions, workers)`;
/// * `training` — DQN `learn` steps/s, per `(model, backend, minibatch)`;
/// * `campaign` — gated twice: rollout rows per `(model, backend, batch)`
///   on `steps_per_s` and figure rows per `figure` on `trials_per_s`. Rows
///   that never recorded a given metric are skipped, so the two passes each
///   gate only their own row kind;
/// * `requantize` — the GEMM requantize epilogue micro-benchmark, per
///   `backend`.
pub const GATED: &[GateSpec] = &[
    GateSpec {
        section: "results",
        key_fields: &["model", "backend"],
        metric: "dispatched_rows_per_s",
    },
    GateSpec {
        section: "serve",
        key_fields: &["model", "backend", "sessions"],
        metric: "rows_per_s",
    },
    GateSpec {
        section: "serve_scale",
        key_fields: &["model", "backend", "load", "sessions", "workers"],
        metric: "rows_per_s",
    },
    GateSpec {
        section: "training",
        key_fields: &["model", "backend", "minibatch"],
        metric: "learn_steps_per_s",
    },
    GateSpec {
        section: "campaign",
        key_fields: &["model", "backend", "batch"],
        metric: "steps_per_s",
    },
    GateSpec { section: "campaign", key_fields: &["figure"], metric: "trials_per_s" },
    GateSpec { section: "requantize", key_fields: &["backend"], metric: "dispatched_elems_per_s" },
];

/// Compares a fresh `BENCH_<rev>.json` snapshot against a checked-in
/// baseline and returns one message per regression (empty = gate passes).
///
/// Every [`GATED`] section is diffed on its metric. A baseline row that is
/// absent from the fresh snapshot is a failure (a silently dropped
/// benchmark would otherwise pass the gate forever), as is a non-finite
/// fresh throughput (JSON `null` parses back as NaN, and every NaN
/// comparison would otherwise read as "no regression"). Rows that exist
/// only in the fresh snapshot are new coverage, not failures. `tolerance`
/// is the allowed fractional drop: `0.10` fails anything more than 10 %
/// below baseline.
pub fn perf_regressions(baseline: &Json, fresh: &Json, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for spec in GATED {
        gate_section(baseline, fresh, spec, tolerance, &mut failures);
    }
    failures
}

/// Rows of one snapshot section (missing or non-array sections are empty).
fn section_rows(snapshot: &Json, section: &str) -> Vec<Json> {
    match snapshot.get(section) {
        Some(Json::Arr(rows)) => rows.clone(),
        _ => Vec::new(),
    }
}

/// A row's identity under `spec`: its key-field values joined with `/`.
fn row_key(row: &Json, spec: &GateSpec) -> String {
    spec.key_fields
        .iter()
        .map(|field| match row.get(field) {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Num(n)) => format!("{n}"),
            _ => "?".to_string(),
        })
        .collect::<Vec<_>>()
        .join("/")
}

/// Diffs one snapshot section (an array of JSON object rows) on `spec`'s
/// metric.
fn gate_section(
    baseline: &Json,
    fresh: &Json,
    spec: &GateSpec,
    tolerance: f64,
    failures: &mut Vec<String>,
) {
    let GateSpec { section, metric, .. } = *spec;
    let fresh_rows = section_rows(fresh, section);
    for base_row in section_rows(baseline, section) {
        let key = row_key(&base_row, spec);
        let Some(base_metric) = base_row.get(metric).and_then(Json::as_f64) else {
            continue; // baseline row never recorded this metric: nothing to gate
        };
        if !base_metric.is_finite() {
            continue;
        }
        let Some(fresh_row) = fresh_rows.iter().find(|row| row_key(row, spec) == key) else {
            failures.push(format!("{section} {key}: row missing from the fresh snapshot"));
            continue;
        };
        let fresh_metric = fresh_row.get(metric).and_then(Json::as_f64).unwrap_or(f64::NAN);
        if !fresh_metric.is_finite() {
            failures.push(format!("{section} {key}: {metric} is non-finite in the fresh snapshot"));
            continue;
        }
        let floor = base_metric * (1.0 - tolerance);
        if fresh_metric < floor {
            failures.push(format!(
                "{section} {key}: {metric} regressed {:.1}% ({fresh_metric:.0} vs baseline {base_metric:.0}, floor {floor:.0})",
                100.0 * (1.0 - fresh_metric / base_metric)
            ));
        }
    }
}

/// Orders `(label, snapshot)` pairs oldest → newest by each snapshot's
/// `unix_time` field. Snapshots predating the field (no `unix_time`) sort
/// before every stamped one, keeping their given relative order — so a
/// shell-glob's alphabetical order breaks ties among legacy files, and the
/// newest stamped snapshot always lands last (the baseline position).
pub fn order_snapshots(mut snapshots: Vec<(String, Json)>) -> Vec<(String, Json)> {
    snapshots.sort_by(|(_, a), (_, b)| {
        let stamp = |snapshot: &Json| {
            snapshot
                .get("unix_time")
                .and_then(Json::as_f64)
                .filter(|time| time.is_finite())
                .unwrap_or(f64::NEG_INFINITY)
        };
        stamp(a).total_cmp(&stamp(b))
    });
    snapshots
}

/// Renders the per-key throughput trajectory across `snapshots` (ordered
/// oldest → newest, e.g. by [`order_snapshots`]): one line per [`GATED`]
/// row key, with the metric's value in each snapshot left to right. Keys
/// appear in the order they first show up; snapshots missing a key render
/// `-` in its column, non-finite values render `nan`. Sections no snapshot
/// recorded are omitted.
pub fn trend_report(snapshots: &[(String, Json)]) -> String {
    let mut out = String::new();
    let labels: Vec<&str> = snapshots.iter().map(|(label, _)| label.as_str()).collect();
    out.push_str(&format!("trend across {} snapshot(s): {}\n", labels.len(), labels.join(" -> ")));
    for spec in GATED {
        let mut keys: Vec<String> = Vec::new();
        for (_, snapshot) in snapshots {
            for row in section_rows(snapshot, spec.section) {
                if row.get(spec.metric).is_none() {
                    continue; // not this pass's row kind (e.g. figure rows)
                }
                let key = row_key(&row, spec);
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        if keys.is_empty() {
            continue;
        }
        out.push_str(&format!("{} {}\n", spec.section, spec.metric));
        for key in keys {
            let values: Vec<String> = snapshots
                .iter()
                .map(|(_, snapshot)| {
                    let value = section_rows(snapshot, spec.section)
                        .iter()
                        .find(|row| row_key(row, spec) == key)
                        .and_then(|row| row.get(spec.metric).and_then(Json::as_f64));
                    match value {
                        Some(metric) if metric.is_finite() => format!("{metric:.0}"),
                        Some(_) => "nan".to_string(),
                        None => "-".to_string(),
                    }
                })
                .collect();
            out.push_str(&format!("  {key}: {}\n", values.join(" -> ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_is_case_insensitive() {
        assert_eq!(parse_scale("SMOKE"), Some(Scale::Smoke));
        assert_eq!(parse_scale("Quick"), Some(Scale::Quick));
        assert_eq!(parse_scale(""), None);
    }

    fn snapshot(text: &str) -> Json {
        Json::parse(text).expect("test snapshot parses")
    }

    #[test]
    fn matching_snapshots_pass_the_gate() {
        let base = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":1000.0}],
                "serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":500.0}]}"#,
        );
        assert_eq!(perf_regressions(&base, &base, 0.10), Vec::<String>::new());
    }

    #[test]
    fn drops_beyond_tolerance_fail_and_small_jitter_passes() {
        let base = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":1000.0}]}"#,
        );
        let jitter = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":905.0}]}"#,
        );
        assert!(perf_regressions(&base, &jitter, 0.10).is_empty(), "9.5% down is within 10%");
        let slow = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":850.0}]}"#,
        );
        let failures = perf_regressions(&base, &slow, 0.10);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("results m/f32"), "{failures:?}");
        assert!(perf_regressions(&base, &slow, 0.20).is_empty(), "a looser gate admits it");
    }

    #[test]
    fn missing_rows_and_non_finite_throughput_fail() {
        let base = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":1000.0}],
                "serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":500.0}]}"#,
        );
        let empty = snapshot(r#"{"results":[],"serve":[]}"#);
        let failures = perf_regressions(&base, &empty, 0.10);
        assert_eq!(failures.len(), 2, "both sections report the missing row: {failures:?}");
        assert!(failures.iter().all(|f| f.contains("missing")));

        // `null` throughput parses back as NaN; the gate must fail it, not
        // let the NaN comparison read as "fine".
        let nan = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":null}],
                "serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":500.0}]}"#,
        );
        let failures = perf_regressions(&base, &nan, 0.10);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("non-finite"), "{failures:?}");
    }

    #[test]
    fn serve_rows_key_on_session_count_and_new_rows_are_not_failures() {
        let base = snapshot(
            r#"{"serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":500.0}]}"#,
        );
        // Fresh snapshot serves a different session count: the baseline row
        // is missing, and the new row is not itself a failure.
        let other = snapshot(
            r#"{"serve":[{"model":"m","backend":"f32","sessions":2048,"rows_per_s":900.0}]}"#,
        );
        let failures = perf_regressions(&base, &other, 0.10);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("m/f32/1024"), "{failures:?}");
        // Same count again: passes, and extra fresh rows are ignored.
        let grown = snapshot(
            r#"{"serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":495.0},
                        {"model":"m","backend":"i8","sessions":1024,"rows_per_s":100.0}]}"#,
        );
        assert!(perf_regressions(&base, &grown, 0.10).is_empty());
    }

    #[test]
    fn old_baselines_without_a_serve_section_still_gate_results() {
        let base =
            snapshot(r#"{"results":[{"model":"m","backend":"i8","dispatched_rows_per_s":10.0}]}"#);
        let fresh = snapshot(
            r#"{"results":[{"model":"m","backend":"i8","dispatched_rows_per_s":4.0}],
                "serve":[{"model":"m","backend":"f32","sessions":1024,"rows_per_s":1.0}]}"#,
        );
        let failures = perf_regressions(&base, &fresh, 0.10);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{failures:?}");
    }

    #[test]
    fn campaign_rows_gate_rollout_steps_and_sweep_trials_independently() {
        let base = snapshot(
            r#"{"campaign":[
                {"model":"m","backend":"f32","batch":64,"steps_per_s":1000.0},
                {"figure":"fig5","scale":"smoke","trials_per_s":10.0}]}"#,
        );
        assert_eq!(perf_regressions(&base, &base, 0.10), Vec::<String>::new());

        // A rollout regression is caught by the steps/s pass alone.
        let slow_rollout = snapshot(
            r#"{"campaign":[
                {"model":"m","backend":"f32","batch":64,"steps_per_s":500.0},
                {"figure":"fig5","scale":"smoke","trials_per_s":10.0}]}"#,
        );
        let failures = perf_regressions(&base, &slow_rollout, 0.10);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("m/f32/64"), "{failures:?}");
        assert!(failures[0].contains("steps_per_s"), "{failures:?}");

        // A sweep regression is caught by the trials/s pass alone.
        let slow_sweep = snapshot(
            r#"{"campaign":[
                {"model":"m","backend":"f32","batch":64,"steps_per_s":1000.0},
                {"figure":"fig5","scale":"smoke","trials_per_s":2.0}]}"#,
        );
        let failures = perf_regressions(&base, &slow_sweep, 0.10);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("fig5"), "{failures:?}");
        assert!(failures[0].contains("trials_per_s"), "{failures:?}");

        // Pre-campaign baselines gate nothing new.
        let old = snapshot(r#"{"results":[]}"#);
        assert!(perf_regressions(&old, &base, 0.10).is_empty());
    }

    #[test]
    fn requantize_rows_gate_the_dispatched_epilogue_throughput() {
        let base =
            snapshot(r#"{"requantize":[{"backend":"q4.11","dispatched_elems_per_s":1000.0}]}"#);
        assert_eq!(perf_regressions(&base, &base, 0.10), Vec::<String>::new());
        let slow =
            snapshot(r#"{"requantize":[{"backend":"q4.11","dispatched_elems_per_s":500.0}]}"#);
        let failures = perf_regressions(&base, &slow, 0.10);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("requantize q4.11"), "{failures:?}");
        // Baselines predating the section gate nothing new.
        let old = snapshot(r#"{"results":[]}"#);
        assert!(perf_regressions(&old, &base, 0.10).is_empty());
    }

    #[test]
    fn serve_scale_and_training_rows_are_gated() {
        let base = snapshot(
            r#"{"serve_scale":[{"model":"m","backend":"f32","load":"saturated","sessions":32768,
                                "workers":4,"rows_per_s":1000.0}],
                "training":[{"model":"m","backend":"i8","minibatch":128,"learn_steps_per_s":800.0}]}"#,
        );
        assert_eq!(perf_regressions(&base, &base, 0.10), Vec::<String>::new());

        let slow = snapshot(
            r#"{"serve_scale":[{"model":"m","backend":"f32","load":"saturated","sessions":32768,
                                "workers":4,"rows_per_s":500.0}],
                "training":[{"model":"m","backend":"i8","minibatch":128,"learn_steps_per_s":300.0}]}"#,
        );
        let failures = perf_regressions(&base, &slow, 0.10);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("serve_scale m/f32/saturated/32768/4"), "{failures:?}");
        assert!(failures[1].contains("training m/i8/128"), "{failures:?}");
        assert!(failures[1].contains("learn_steps_per_s"), "{failures:?}");

        // A worker count dropped from the sweep is a missing row, not a pass.
        let dropped = snapshot(r#"{"serve_scale":[],"training":[]}"#);
        let failures = perf_regressions(&base, &dropped, 0.10);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().all(|f| f.contains("missing")), "{failures:?}");

        // Baselines predating both sections gate nothing new.
        let old = snapshot(r#"{"results":[]}"#);
        assert!(perf_regressions(&old, &base, 0.10).is_empty());
    }

    #[test]
    fn snapshots_order_by_unix_time_with_legacy_files_first() {
        let legacy = snapshot(r#"{"rev":"aaa"}"#);
        let older = snapshot(r#"{"rev":"bbb","unix_time":100.0}"#);
        let newer = snapshot(r#"{"rev":"ccc","unix_time":200.0}"#);
        let ordered = order_snapshots(vec![
            ("ccc".to_string(), newer),
            ("aaa".to_string(), legacy),
            ("bbb".to_string(), older),
        ]);
        let labels: Vec<&str> = ordered.iter().map(|(label, _)| label.as_str()).collect();
        assert_eq!(labels, ["aaa", "bbb", "ccc"], "legacy first, then by stamp");
    }

    #[test]
    fn trend_report_tracks_each_key_across_snapshots() {
        let old = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":1000.0}]}"#,
        );
        let new = snapshot(
            r#"{"results":[{"model":"m","backend":"f32","dispatched_rows_per_s":1200.0}],
                "training":[{"model":"m","backend":"f32","minibatch":32,"learn_steps_per_s":900.0}]}"#,
        );
        let report = trend_report(&[("a1".to_string(), old), ("b2".to_string(), new)]);
        assert!(report.contains("2 snapshot(s): a1 -> b2"), "{report}");
        assert!(report.contains("m/f32: 1000 -> 1200"), "{report}");
        // A key absent from the older snapshot renders `-` there.
        assert!(report.contains("m/f32/32: - -> 900"), "{report}");
        // Sections no snapshot recorded leave no header behind.
        assert!(!report.contains("requantize"), "{report}");
    }

    #[test]
    fn jobs_parsing_rejects_zero_and_garbage() {
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs("32"), Some(32));
        assert_eq!(parse_jobs("0"), None, "`--jobs 0` must fail loudly, not fall back");
        assert_eq!(parse_jobs("-4"), None);
        assert_eq!(parse_jobs("4.5"), None);
        assert_eq!(parse_jobs(""), None);
    }
}

//! Benchmark and figure-regeneration harness for the navft workspace.
//!
//! * The `figures` binary regenerates every figure of the paper's evaluation
//!   as plain-text tables and JSONL artifacts: `cargo run --release -p
//!   navft-bench --bin figures -- all` (or a single figure id, e.g. `fig5`;
//!   add `--scale smoke|quick|paper`, `--jobs N`, `--out DIR` and
//!   `--resume`). All requested figures' campaign cells run on one shared
//!   work-stealing scheduler; see `navft_core::sweep`.
//! * The Criterion benches (`cargo bench -p navft-bench`) time representative
//!   cells of each experiment so regressions in the simulator or the
//!   fault-injection tool-chain are visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use navft_core::Scale;

/// Parses a `--scale` argument value.
///
/// # Examples
///
/// ```
/// use navft_bench::parse_scale;
/// use navft_core::Scale;
///
/// assert_eq!(parse_scale("smoke"), Some(Scale::Smoke));
/// assert_eq!(parse_scale("quick"), Some(Scale::Quick));
/// assert_eq!(parse_scale("paper"), Some(Scale::Paper));
/// assert_eq!(parse_scale("huge"), None);
/// ```
pub fn parse_scale(text: &str) -> Option<Scale> {
    match text.to_ascii_lowercase().as_str() {
        "smoke" => Some(Scale::Smoke),
        "quick" => Some(Scale::Quick),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}

/// Parses a `--jobs` argument value: a *positive* worker-thread count.
///
/// `0` is rejected rather than silently falling back to the scale default —
/// [`Scale::threads_or`] treats `Some(0)` as "unset", so accepting it at the
/// CLI would turn an explicit (likely erroneous) request into a surprise
/// thread count.
///
/// # Examples
///
/// ```
/// use navft_bench::parse_jobs;
///
/// assert_eq!(parse_jobs("4"), Some(4));
/// assert_eq!(parse_jobs("0"), None);
/// assert_eq!(parse_jobs("-1"), None);
/// assert_eq!(parse_jobs("many"), None);
/// ```
pub fn parse_jobs(text: &str) -> Option<usize> {
    text.parse::<usize>().ok().filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_is_case_insensitive() {
        assert_eq!(parse_scale("SMOKE"), Some(Scale::Smoke));
        assert_eq!(parse_scale("Quick"), Some(Scale::Quick));
        assert_eq!(parse_scale(""), None);
    }

    #[test]
    fn jobs_parsing_rejects_zero_and_garbage() {
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs("32"), Some(32));
        assert_eq!(parse_jobs("0"), None, "`--jobs 0` must fail loudly, not fall back");
        assert_eq!(parse_jobs("-4"), None);
        assert_eq!(parse_jobs("4.5"), None);
        assert_eq!(parse_jobs(""), None);
    }
}

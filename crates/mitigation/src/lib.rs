//! The paper's two low-overhead fault-mitigation techniques.
//!
//! Traditional protection (ECC, dual/triple modular redundancy) is too
//! expensive for resource-constrained edge accelerators. Based on its fault
//! characterization, the paper proposes two application-aware alternatives,
//! both implemented here:
//!
//! 1. **Adaptive exploration-rate adjustment** during training (§5.1,
//!    [`ExplorationAdjuster`]): detect faults from drops in cumulative reward
//!    and respond by boosting exploration (transient faults) or restarting the
//!    exploration schedule with a slowed decay (permanent faults), so the
//!    agent can learn around the fault pattern.
//! 2. **Range-based anomaly detection** during inference (§5.2,
//!    [`RangeGuard`] and [`ActivationGuard`]): instrument per-layer value
//!    ranges after training, flag values whose sign/integer bits escape the
//!    10 %-widened range, and skip (zero) them, exploiting the sparsity of
//!    trained policies.
//!
//! # Examples
//!
//! Protecting a trained policy's weights:
//!
//! ```
//! use navft_mitigation::{RangeGuard, RangeGuardConfig};
//! use navft_nn::mlp;
//! use navft_qformat::QFormat;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut policy = mlp(&[16, 32, 4], &mut rng);
//! let guard = RangeGuard::from_network(&policy, QFormat::Q4_11, RangeGuardConfig::paper());
//!
//! // A bit flip in the sign/integer bits creates a large outlier...
//! policy.layer_weights_mut(0).unwrap()[10] = -12.0;
//! // ...which the guard detects and skips.
//! assert_eq!(guard.scrub(&mut policy), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anomaly;
mod exploration;
mod overhead;

pub use anomaly::{ActivationGuard, GuardedElement, RangeGuard, RangeGuardConfig, ValueBounds};
pub use exploration::{ExplorationAdjuster, ExplorationAdjusterConfig, MitigationEvent};
pub use overhead::{measure_overhead, OverheadReport};

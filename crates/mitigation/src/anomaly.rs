//! Inference-time mitigation: range-based anomaly detection (§5.2).
//!
//! Once a policy is trained, the value range `(aᵢ, bᵢ)` of every layer's
//! parameters is instrumented. During inference each consumed value is checked
//! against its layer's range widened by a detection margin (10 % in the
//! paper); the comparison only looks at the *sign and integer bits* of the
//! fixed-point word, because fractional-bit corruption cannot move a value
//! outside the margin. Detected outliers are skipped (their contribution is
//! zeroed), exploiting the sparsity of trained policies: a small weight whose
//! high-order bit flipped is far more likely to be a fault than a legitimate
//! large value.

use navft_nn::{Element, ForwardHooks, I8Affine, LayerKind, Network, NetworkBase, QNetwork};
use navft_qformat::{QFormat, QValue};

/// Parameters of the range-based anomaly detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeGuardConfig {
    /// Detection margin applied to the instrumented bounds (the paper uses
    /// 10 %).
    pub margin: f64,
    /// Whether to compare only the sign and integer bits of the word (the
    /// paper's hardware-cheap variant) or the full value.
    pub integer_bits_only: bool,
}

impl RangeGuardConfig {
    /// The paper's configuration: 10 % margin, sign+integer-bit comparison.
    pub fn paper() -> RangeGuardConfig {
        RangeGuardConfig { margin: 0.1, integer_bits_only: true }
    }

    /// Full-precision comparison (used by the ablation study).
    pub fn full_precision(margin: f64) -> RangeGuardConfig {
        RangeGuardConfig { margin, integer_bits_only: false }
    }
}

impl Default for RangeGuardConfig {
    fn default() -> Self {
        RangeGuardConfig::paper()
    }
}

/// The instrumented per-layer value range of a trained policy, plus the
/// detection logic.
///
/// # Examples
///
/// ```
/// use navft_mitigation::{RangeGuard, RangeGuardConfig};
/// use navft_nn::mlp;
/// use navft_qformat::QFormat;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mut policy = mlp(&[10, 16, 4], &mut rng);
/// let guard = RangeGuard::from_network(&policy, QFormat::Q4_11, RangeGuardConfig::paper());
///
/// // A fault makes one weight explode; the guard scrubs it back to zero.
/// policy.layer_weights_mut(0).unwrap()[3] = 14.0;
/// let detected = guard.scrub(&mut policy);
/// assert_eq!(detected, 1);
/// assert_eq!(policy.layer_weights(0).unwrap()[3], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RangeGuard {
    format: QFormat,
    config: RangeGuardConfig,
    /// Per parametric layer: `(layer index, guarded lower bound, guarded upper bound)`.
    bounds: Vec<(usize, f32, f32)>,
}

impl RangeGuard {
    /// Instruments the per-layer weight ranges of a trained network.
    pub fn from_network(
        network: &Network,
        format: QFormat,
        config: RangeGuardConfig,
    ) -> RangeGuard {
        let bounds = network
            .weight_ranges()
            .into_iter()
            .map(|(layer, lo, hi)| {
                let (lo, hi) = widen(lo, hi, config.margin);
                (layer, lo, hi)
            })
            .collect();
        RangeGuard { format, config, bounds }
    }

    /// Builds a guard from explicit per-layer bounds (before the margin is
    /// applied).
    pub fn from_bounds(
        bounds: impl IntoIterator<Item = (usize, f32, f32)>,
        format: QFormat,
        config: RangeGuardConfig,
    ) -> RangeGuard {
        let bounds = bounds
            .into_iter()
            .map(|(layer, lo, hi)| {
                let (lo, hi) = widen(lo, hi, config.margin);
                (layer, lo, hi)
            })
            .collect();
        RangeGuard { format, config, bounds }
    }

    /// The configuration in use.
    pub fn config(&self) -> RangeGuardConfig {
        self.config
    }

    /// The guarded (margin-widened) bounds per layer.
    pub fn bounds(&self) -> &[(usize, f32, f32)] {
        &self.bounds
    }

    /// Whether `value` is anomalous for layer `layer` — generic over the
    /// policy's storage element: `f32` values compare in the value domain,
    /// live raw words compare with pure integer arithmetic on the stored
    /// word (no dequantize round trip), matching the hardware the paper
    /// sketches (a comparator on the sign and integer bits of the bus). The
    /// instantiations agree on every value of the storage grid.
    ///
    /// `meta` is the network-level metadata of the backend (the affine scale
    /// for `i8`, ignored by the other backends — pass the network's
    /// `net_meta()`).
    ///
    /// Values in layers the guard has no bounds for are never anomalous.
    pub fn is_anomalous_in<E: GuardedElement>(
        &self,
        layer: usize,
        value: E,
        meta: &E::NetMeta,
    ) -> bool {
        let Some(&(_, lo, hi)) = self.bounds.iter().find(|(l, _, _)| *l == layer) else {
            return false;
        };
        value.is_outside(&E::layer_bounds(lo, hi, self.format, &self.config, meta))
    }

    /// [`RangeGuard::is_anomalous_in`] for `f32` values (the historical
    /// name).
    pub fn is_anomalous(&self, layer: usize, value: f32) -> bool {
        self.is_anomalous_in(layer, value, &None)
    }

    /// Scans every guarded layer of `network` — either backend — and zeroes
    /// anomalous weights (the "skip the operations around this data"
    /// recovery). On the native backend the scrub runs on live raw words in
    /// place. Returns the number of weights scrubbed.
    ///
    /// # Panics
    ///
    /// Panics if a natively quantized network's format differs from the
    /// guard's.
    pub fn scrub<E: GuardedElement>(&self, network: &mut NetworkBase<E>) -> usize {
        E::check_network(network, self.format);
        let meta = *network.net_meta();
        let mut scrubbed = 0;
        for &(layer, lo, hi) in &self.bounds {
            // The comparison form is loop-invariant per layer, so the scan
            // hoists it (for raw words that is one integer triple).
            let bounds = E::layer_bounds(lo, hi, self.format, &self.config, &meta);
            if let Some(weights) = network.layer_weights_mut(layer) {
                for w in weights.iter_mut() {
                    if w.is_outside(&bounds) {
                        *w = E::default();
                        scrubbed += 1;
                    }
                }
            }
        }
        scrubbed
    }

    /// Scrubs one buffer of stored values (e.g. a served activation row or
    /// an observation about to enter the engine) against layer `layer`'s
    /// guarded bounds, zeroing every anomalous value in place. Returns the
    /// number of values scrubbed.
    ///
    /// This is the streaming counterpart of [`RangeGuard::scrub`]: the same
    /// comparison the weight scan hoists per layer, applied to a transient
    /// buffer the guard does not own — what a serving daemon runs per batch
    /// row. `meta` is the backend's network-level metadata (the affine scale
    /// for `i8`; pass the policy's `net_meta()`). Buffers in layers the
    /// guard has no bounds for are left untouched.
    pub fn scrub_buffer<E: GuardedElement>(
        &self,
        layer: usize,
        values: &mut [E],
        meta: &E::NetMeta,
    ) -> usize {
        let Some(&(_, lo, hi)) = self.bounds.iter().find(|(l, _, _)| *l == layer) else {
            return 0;
        };
        let bounds = E::layer_bounds(lo, hi, self.format, &self.config, meta);
        let mut scrubbed = 0;
        for v in values.iter_mut() {
            if v.is_outside(&bounds) {
                *v = E::default();
                scrubbed += 1;
            }
        }
        scrubbed
    }

    /// Counts anomalous weights of a network of either backend without
    /// modifying it.
    ///
    /// # Panics
    ///
    /// Panics if a natively quantized network's format differs from the
    /// guard's.
    pub fn count_anomalies<E: GuardedElement>(&self, network: &NetworkBase<E>) -> usize {
        E::check_network(network, self.format);
        self.bounds
            .iter()
            .filter_map(|&(layer, lo, hi)| {
                let bounds = E::layer_bounds(lo, hi, self.format, &self.config, network.net_meta());
                network
                    .layer_weights(layer)
                    .map(|weights| weights.iter().filter(|w| w.is_outside(&bounds)).count())
            })
            .sum()
    }
}

/// A storage element the range guard can police: how one layer's
/// `(lo, hi)` bounds translate into this representation's comparison, and
/// how a stored weight compares against them.
///
/// Implemented for `f32` (value-domain comparison, optionally reduced to
/// sign+integer bits), `i32` (pure integer comparison on the live raw word)
/// and `i8` (byte comparison on the affine grid). A further backend plugs
/// into [`RangeGuard::scrub`] / [`RangeGuard::count_anomalies`] with one
/// `impl`.
pub trait GuardedElement: Element {
    /// The per-layer comparison, precomputed once per layer scan.
    type Bounds: Copy;

    /// Builds the comparison for one layer's margin-widened `(lo, hi)`.
    /// `meta` is the backend's network-level metadata (e.g. the `i8` affine
    /// scale); backends whose storage grid is fully described by `format`
    /// ignore it.
    fn layer_bounds(
        lo: f32,
        hi: f32,
        format: QFormat,
        config: &RangeGuardConfig,
        meta: &Self::NetMeta,
    ) -> Self::Bounds;

    /// Whether this stored weight falls outside the guarded range.
    fn is_outside(&self, bounds: &Self::Bounds) -> bool;

    /// Validates a network against the guard's format before a scan.
    ///
    /// # Panics
    ///
    /// Panics if the network's storage format is incompatible with the
    /// guard's (native backend only).
    fn check_network(network: &NetworkBase<Self>, guard_format: QFormat);
}

/// The `f32` guard comparison: the raw `(lo, hi)` plus their sign+integer
/// reductions, selected by the config.
#[derive(Debug, Clone, Copy)]
pub struct ValueBounds {
    lo: f32,
    hi: f32,
    lo_int: i32,
    hi_int: i32,
    integer_bits_only: bool,
    format: QFormat,
}

impl GuardedElement for f32 {
    type Bounds = ValueBounds;

    fn layer_bounds(
        lo: f32,
        hi: f32,
        format: QFormat,
        config: &RangeGuardConfig,
        _meta: &Option<QFormat>,
    ) -> ValueBounds {
        ValueBounds {
            lo,
            hi,
            lo_int: compare_integer_bits(lo, format),
            hi_int: compare_integer_bits(hi, format),
            integer_bits_only: config.integer_bits_only,
            format,
        }
    }

    fn is_outside(&self, bounds: &ValueBounds) -> bool {
        if bounds.integer_bits_only {
            let v = compare_integer_bits(*self, bounds.format);
            v > bounds.hi_int || v < bounds.lo_int
        } else {
            *self > bounds.hi || *self < bounds.lo
        }
    }

    fn check_network(_network: &Network, _guard_format: QFormat) {}
}

impl GuardedElement for i32 {
    /// A raw word is anomalous iff `raw >> shift` falls outside `[lo, hi]`.
    type Bounds = (i32, i32, u8);

    fn layer_bounds(
        lo: f32,
        hi: f32,
        format: QFormat,
        config: &RangeGuardConfig,
        _meta: &QFormat,
    ) -> (i32, i32, u8) {
        let frac = format.frac_bits();
        if config.integer_bits_only {
            (
                QValue::quantize(lo, format).raw() >> frac,
                QValue::quantize(hi, format).raw() >> frac,
                frac,
            )
        } else {
            // `raw·2^-frac > hi` for grid values is `raw > floor(hi·2^frac)`
            // (and symmetrically with ceil for the lower bound), so the
            // comparison stays exact without a float round trip per word.
            let scale = (2.0f32).powi(i32::from(frac));
            (
                format.saturate_raw((lo * scale).ceil() as i64),
                format.saturate_raw((hi * scale).floor() as i64),
                0,
            )
        }
    }

    fn is_outside(&self, &(lo, hi, shift): &(i32, i32, u8)) -> bool {
        *self >> shift > hi || *self >> shift < lo
    }

    fn check_network(network: &QNetwork, guard_format: QFormat) {
        assert_eq!(network.format(), guard_format, "guard format does not match network format");
    }
}

impl GuardedElement for i8 {
    /// A stored byte is anomalous iff it falls outside `[lo, hi]` on the
    /// network's affine grid. Affine bytes carry no binary point, so the
    /// sign+integer-bit reduction degenerates to the whole-word comparison
    /// and the config's `integer_bits_only` flag makes no difference.
    type Bounds = (i8, i8);

    fn layer_bounds(
        lo: f32,
        hi: f32,
        _format: QFormat,
        _config: &RangeGuardConfig,
        meta: &I8Affine,
    ) -> (i8, i8) {
        // `byte·scale > hi` for stored bytes is `byte > floor(hi/scale)`
        // (and symmetrically with ceil below), so the comparison stays exact
        // without a float multiply per byte.
        let lo = (lo / meta.scale).ceil().clamp(-128.0, 127.0) as i8;
        let hi = (hi / meta.scale).floor().clamp(-128.0, 127.0) as i8;
        (lo, hi)
    }

    fn is_outside(&self, &(lo, hi): &(i8, i8)) -> bool {
        *self > hi || *self < lo
    }

    /// No-op: the affine scale travels with the network itself, so there is
    /// no separate format to cross-check against the guard.
    fn check_network(_network: &NetworkBase<i8>, _guard_format: QFormat) {}
}

/// Widens `(lo, hi)` by `margin` (relative, away from zero on both sides).
fn widen(lo: f32, hi: f32, margin: f64) -> (f32, f32) {
    let m = margin as f32;
    // Scaling by (1 + m) moves a value away from zero regardless of sign.
    let widen_one = |v: f32| v * (1.0 + m);
    let lo = if lo > 0.0 { lo * (1.0 - m) } else { widen_one(lo) };
    let hi = if hi < 0.0 { hi * (1.0 - m) } else { widen_one(hi) };
    (lo, hi)
}

/// Reduces a value to its sign-and-integer-bit representation in `format`:
/// the fractional bits are discarded, so two values that differ only in the
/// fraction compare equal.
fn compare_integer_bits(value: f32, format: QFormat) -> i32 {
    let word = QValue::quantize(value, format);
    word.raw() >> format.frac_bits()
}

/// An activation guard: clamps activation values that escape the range
/// observed during fault-free calibration.
///
/// Attach it as [`ForwardHooks`] during inference to protect the activation
/// buffers in addition to the weight scrub.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationGuard {
    /// Per-layer `(lower, upper)` bounds after the margin is applied.
    bounds: Vec<(f32, f32)>,
    /// Number of values clamped so far.
    clamped: usize,
}

impl ActivationGuard {
    /// Builds a guard from per-layer activation ranges (e.g. from
    /// [`navft_nn::RangeRecorder`]) and a detection margin.
    pub fn new(ranges: &[(f32, f32)], margin: f64) -> ActivationGuard {
        let bounds = ranges.iter().map(|&(lo, hi)| widen(lo, hi, margin)).collect();
        ActivationGuard { bounds, clamped: 0 }
    }

    /// Number of activation values clamped so far.
    pub fn clamped(&self) -> usize {
        self.clamped
    }
}

impl ForwardHooks for ActivationGuard {
    fn on_activation(&mut self, layer_index: usize, _kind: LayerKind, values: &mut [f32]) {
        let Some(&(lo, hi)) = self.bounds.get(layer_index) else { return };
        if !lo.is_finite() || !hi.is_finite() {
            return;
        }
        for v in values.iter_mut() {
            if *v > hi || *v < lo {
                *v = 0.0;
                self.clamped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_nn::{mlp, RangeRecorder, Tensor};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn network(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        mlp(&[8, 16, 4], &mut rng)
    }

    #[test]
    fn clean_network_has_no_anomalies() {
        let net = network(0);
        let guard = RangeGuard::from_network(&net, QFormat::Q4_11, RangeGuardConfig::paper());
        assert_eq!(guard.count_anomalies(&net), 0);
        let mut copy = net.clone();
        assert_eq!(guard.scrub(&mut copy), 0);
        assert_eq!(copy.flat_weights(), net.flat_weights());
    }

    #[test]
    fn corrupted_weight_is_detected_and_zeroed() {
        let net = network(1);
        let guard = RangeGuard::from_network(&net, QFormat::Q4_11, RangeGuardConfig::paper());
        let mut corrupted = net.clone();
        corrupted.layer_weights_mut(0).expect("weights")[5] = -15.0;
        assert_eq!(guard.count_anomalies(&corrupted), 1);
        assert_eq!(guard.scrub(&mut corrupted), 1);
        assert_eq!(corrupted.layer_weights(0).expect("weights")[5], 0.0);
    }

    #[test]
    fn small_deviations_within_margin_are_not_flagged() {
        let net = network(2);
        let guard = RangeGuard::from_network(&net, QFormat::Q4_11, RangeGuardConfig::paper());
        let mut nudged = net.clone();
        // Perturb a weight by one fractional LSB: invisible to the
        // integer-bit comparison.
        nudged.layer_weights_mut(0).expect("weights")[0] += QFormat::Q4_11.resolution();
        assert_eq!(guard.count_anomalies(&nudged), 0);
    }

    #[test]
    fn integer_bit_comparison_ignores_fraction_only_outliers() {
        // Bounds of ±1.0 with a 10% margin; a value of 1.4 exceeds the bound
        // but shares the same integer bits (1), so the cheap comparison
        // accepts it while the full-precision comparison flags it.
        let cheap =
            RangeGuard::from_bounds([(0, -1.0, 1.0)], QFormat::Q4_11, RangeGuardConfig::paper());
        let precise = RangeGuard::from_bounds(
            [(0, -1.0, 1.0)],
            QFormat::Q4_11,
            RangeGuardConfig::full_precision(0.1),
        );
        assert!(!cheap.is_anomalous(0, 1.4));
        assert!(precise.is_anomalous(0, 1.4));
        // Both flag a genuinely large outlier.
        assert!(cheap.is_anomalous(0, 5.0));
        assert!(precise.is_anomalous(0, 5.0));
    }

    #[test]
    fn unguarded_layers_are_never_anomalous() {
        let guard =
            RangeGuard::from_bounds([(2, -1.0, 1.0)], QFormat::Q4_11, RangeGuardConfig::paper());
        assert!(!guard.is_anomalous(0, 100.0));
        assert!(guard.is_anomalous(2, 100.0));
        assert_eq!(guard.bounds().len(), 1);
    }

    #[test]
    fn scrubbing_restores_policy_output_after_a_fault() {
        let net = network(3);
        let input = Tensor::full(&[8], 0.5);
        let clean_output = net.forward(&input);
        let mut corrupted = net.clone();
        corrupted.layer_weights_mut(0).expect("weights")[7] = 15.5;
        let corrupted_output = corrupted.forward(&input);
        let guard = RangeGuard::from_network(&net, QFormat::Q4_11, RangeGuardConfig::paper());
        guard.scrub(&mut corrupted);
        let repaired_output = corrupted.forward(&input);
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).sum()
        };
        assert!(dist(&repaired_output, &clean_output) < dist(&corrupted_output, &clean_output));
    }

    #[test]
    fn quantized_scrub_zeroes_the_corrupted_live_word() {
        let net = network(5);
        let format = QFormat::Q4_11;
        let guard = RangeGuard::from_network(&net, format, RangeGuardConfig::paper());
        let mut qnet = net.to_quantized(format);
        assert_eq!(guard.count_anomalies(&qnet), 0);
        // A sign-bit flip on a live word creates a large negative outlier.
        let layer = qnet.parametric_layers()[0];
        let before = qnet.layer_weights_raw(layer).expect("words")[5];
        qnet.layer_weights_raw_mut(layer).expect("words")[5] = before ^ (1 << 15);
        let qnet_words_before = qnet.layer_weights_raw(layer).expect("words").to_vec();
        assert_eq!(guard.count_anomalies(&qnet), 1);
        assert_eq!(guard.scrub(&mut qnet), 1);
        assert_eq!(qnet.layer_weights_raw(layer).expect("words")[5], 0);
        // Only the anomalous word changed.
        let after = qnet.layer_weights_raw(layer).expect("words");
        assert_eq!(qnet_words_before.iter().zip(after.iter()).filter(|(a, b)| a != b).count(), 1);
    }

    #[test]
    fn raw_and_f32_detection_agree_on_grid_values() {
        for config in [RangeGuardConfig::paper(), RangeGuardConfig::full_precision(0.1)] {
            let format = QFormat::Q3_4;
            let guard = RangeGuard::from_bounds([(0, -1.3, 1.7)], format, config);
            for raw in format.min_raw()..=format.max_raw() {
                let value = raw as f32 * format.resolution();
                assert_eq!(
                    guard.is_anomalous_in(0, raw, &format),
                    guard.is_anomalous(0, value),
                    "raw {raw} (value {value}) disagrees under {config:?}"
                );
            }
        }
    }

    #[test]
    fn i8_scrub_zeroes_bytes_outside_the_affine_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut net = mlp(&[4, 3], &mut rng);
        for w in net.layer_weights_mut(0).expect("weights") {
            *w = 0.2;
        }
        let mut inet = navft_nn::I8Network::quantize_with(&net, I8Affine { scale: 0.01 });
        let guard =
            RangeGuard::from_bounds([(0, -0.5, 0.5)], QFormat::Q3_4, RangeGuardConfig::paper());
        assert_eq!(guard.count_anomalies(&inet), 0);
        // Corrupt one byte far past the widened bound (0.55 → byte 55).
        inet.layer_weights_raw_mut(0).expect("bytes")[3] = 100;
        assert!(guard.is_anomalous_in(0, 100i8, &inet.affine()));
        assert_eq!(guard.count_anomalies(&inet), 1);
        assert_eq!(guard.scrub(&mut inet), 1);
        assert_eq!(inet.layer_weights_raw(0).expect("bytes")[3], 0);
        assert_eq!(guard.count_anomalies(&inet), 0);
    }

    #[test]
    fn i8_bounds_quantize_onto_the_affine_grid_and_clamp() {
        let affine = I8Affine { scale: 0.25 };
        let config = RangeGuardConfig::paper();
        let bounds =
            <i8 as GuardedElement>::layer_bounds(-1.3, 1.7, QFormat::Q3_4, &config, &affine);
        // ceil(-1.3/0.25) = -5, floor(1.7/0.25) = 6.
        assert_eq!(bounds, (-5, 6));
        let wide =
            <i8 as GuardedElement>::layer_bounds(-100.0, 100.0, QFormat::Q3_4, &config, &affine);
        assert_eq!(wide, (-128, 127));
    }

    #[test]
    #[should_panic(expected = "guard format does not match")]
    fn quantized_scrub_rejects_mismatched_formats() {
        let net = network(6);
        let guard = RangeGuard::from_network(&net, QFormat::Q4_11, RangeGuardConfig::paper());
        let mut qnet = net.to_quantized(QFormat::Q3_4);
        let _ = guard.scrub(&mut qnet);
    }

    #[test]
    fn scrub_buffer_zeroes_outliers_in_place_per_backend() {
        let format = QFormat::Q4_11;
        let guard = RangeGuard::from_bounds([(0, -1.0, 1.0)], format, RangeGuardConfig::paper());

        // f32: two genuine outliers, one in-range value.
        let mut floats = [0.5f32, 9.0, -12.0];
        assert_eq!(guard.scrub_buffer(0, &mut floats, &None), 2);
        assert_eq!(floats, [0.5, 0.0, 0.0]);

        // Raw Q-format words: same comparison on the live integer words.
        let mut raws = [
            QValue::quantize(0.5, format).raw(),
            QValue::quantize(9.0, format).raw(),
            QValue::quantize(-12.0, format).raw(),
        ];
        let kept = raws[0];
        assert_eq!(guard.scrub_buffer(0, &mut raws, &format), 2);
        assert_eq!(raws, [kept, 0, 0]);

        // i8 affine bytes: bound ±1.1 on a 0.02 grid → |byte| > 55 scrubs.
        let affine = I8Affine { scale: 0.02 };
        let mut bytes = [25i8, 100, -100];
        assert_eq!(guard.scrub_buffer(0, &mut bytes, &affine), 2);
        assert_eq!(bytes, [25, 0, 0]);
    }

    #[test]
    fn scrub_buffer_ignores_unguarded_layers() {
        let guard =
            RangeGuard::from_bounds([(1, -1.0, 1.0)], QFormat::Q4_11, RangeGuardConfig::paper());
        let mut values = [50.0f32, -80.0];
        assert_eq!(guard.scrub_buffer(0, &mut values, &None), 0);
        assert_eq!(values, [50.0, -80.0]);
        assert_eq!(guard.scrub_buffer(1, &mut values, &None), 2);
    }

    #[test]
    fn scrub_buffer_agrees_with_is_anomalous_in() {
        let guard =
            RangeGuard::from_bounds([(0, -1.3, 1.7)], QFormat::Q3_4, RangeGuardConfig::paper());
        let format = QFormat::Q3_4;
        let mut buf: Vec<i32> = (format.min_raw()..=format.max_raw()).collect();
        let expected = buf.iter().filter(|&&raw| guard.is_anomalous_in(0, raw, &format)).count();
        assert_eq!(guard.scrub_buffer(0, &mut buf, &format), expected);
        assert!(buf.iter().zip(format.min_raw()..=format.max_raw()).all(|(&now, raw)| {
            if guard.is_anomalous_in(0, raw, &format) {
                now == 0
            } else {
                now == raw
            }
        }));
    }

    #[test]
    fn activation_guard_zeroes_escaped_activations() {
        let net = network(4);
        let mut recorder = RangeRecorder::new();
        for i in 0..8 {
            net.forward_with(&Tensor::full(&[8], i as f32 * 0.1), &mut recorder);
        }
        let mut guard = ActivationGuard::new(recorder.ranges(), 0.1);
        // Feed an absurdly large input, simulating a corrupted input buffer:
        // activations escape the calibrated range and get clamped.
        let wild = Tensor::full(&[8], 500.0);
        let out = net.forward_with(&wild, &mut guard);
        assert!(guard.clamped() > 0);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn guard_config_accessors() {
        let guard =
            RangeGuard::from_bounds([(0, 0.0, 1.0)], QFormat::Q3_4, RangeGuardConfig::paper());
        assert_eq!(guard.config(), RangeGuardConfig::paper());
        assert_eq!(RangeGuardConfig::default(), RangeGuardConfig::paper());
        assert!(!RangeGuardConfig::full_precision(0.2).integer_bits_only);
    }

    #[test]
    fn widen_expands_both_signs() {
        let (lo, hi) = widen(-2.0, 4.0, 0.1);
        assert!(lo < -2.0 && lo > -2.3);
        assert!(hi > 4.0 && hi < 4.5);
        let (lo, hi) = widen(1.0, 2.0, 0.1);
        assert!(lo < 1.0);
        assert!(hi > 2.0);
    }
}

//! Training-time mitigation: adaptive exploration-rate adjustment (§5.1).
//!
//! The mitigation watches the cumulative reward during training:
//!
//! * a sudden drop of more than `x%` within `y` consecutive episodes signals a
//!   **transient** fault → boost the exploration rate by
//!   `δ(ER) = α · min(f(r), f(r)·f(t))` (Eq. 6), where `f(r)` is the
//!   normalised reward drop and `f(t) = t/T` normalises the fault occurrence
//!   time by the episodes-to-steady-exploitation horizon `T`;
//! * a reward that stays below 50 % of the best observed reward *after* the
//!   schedule has reached steady exploitation signals a **permanent** fault →
//!   revert ε to its initial value and slow its decay by `2ⁿ×` (`n` = number
//!   of permanent detections so far).

use navft_rl::{EpsilonSchedule, TrainingTrace};

/// Parameters of the adaptive exploration-rate adjustment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplorationAdjusterConfig {
    /// Reward-drop threshold `x`, as a fraction of the best observed reward
    /// (the paper uses 25 %).
    pub reward_drop_fraction: f64,
    /// Detection window `y` in episodes (the paper uses 50).
    pub detection_window: usize,
    /// Adjustment coefficient `α` (0.8 for tabular, 0.4 for NN policies).
    pub alpha: f64,
    /// Episodes-to-steady-exploitation horizon `T` under fault-free training
    /// (the paper uses 100).
    pub steady_episodes: usize,
    /// Fraction of the best observed reward below which a steady-exploitation
    /// agent is considered to be fighting a permanent fault (the paper uses
    /// 50 %).
    pub permanent_reward_fraction: f64,
    /// Length of the short averaging window used to smooth episode rewards.
    pub smoothing_window: usize,
}

impl ExplorationAdjusterConfig {
    /// The paper's configuration for tabular policies (`α = 0.8`).
    pub fn tabular() -> ExplorationAdjusterConfig {
        ExplorationAdjusterConfig {
            reward_drop_fraction: 0.25,
            detection_window: 50,
            alpha: 0.8,
            steady_episodes: 100,
            permanent_reward_fraction: 0.5,
            smoothing_window: 5,
        }
    }

    /// The paper's configuration for neural-network policies (`α = 0.4`),
    /// reflecting their stronger self-healing ability.
    pub fn network() -> ExplorationAdjusterConfig {
        ExplorationAdjusterConfig { alpha: 0.4, ..ExplorationAdjusterConfig::tabular() }
    }
}

impl Default for ExplorationAdjusterConfig {
    fn default() -> Self {
        ExplorationAdjusterConfig::tabular()
    }
}

/// A mitigation action taken by the adjuster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MitigationEvent {
    /// A transient fault was inferred from a sudden reward drop; ε was
    /// boosted.
    TransientDetected {
        /// Episode at which the detection fired.
        episode: usize,
        /// Normalised reward drop `f(r)` that triggered the detection.
        reward_drop: f64,
        /// The ε increment applied (Eq. 6).
        boost: f64,
    },
    /// A permanent fault was inferred from persistently low reward at steady
    /// exploitation; ε was reset and its decay slowed.
    PermanentDetected {
        /// Episode at which the detection fired.
        episode: usize,
        /// The decay slow-down factor applied (`2ⁿ`).
        slowdown: f64,
    },
}

/// The adaptive exploration-rate adjuster.
///
/// Use [`ExplorationAdjuster::observe`] as the episode observer of the
/// `navft-rl` training loops.
///
/// # Examples
///
/// ```
/// use navft_mitigation::ExplorationAdjuster;
/// use navft_rl::{EpsilonSchedule, EpisodeOutcome, TrainingTrace};
///
/// let mut adjuster = ExplorationAdjuster::for_tabular();
/// let mut epsilon = EpsilonSchedule::for_training(100);
/// let mut trace = TrainingTrace::new();
/// // Healthy training: rewards near 1.0 — no mitigation fires.
/// for episode in 0..60 {
///     trace.push(EpisodeOutcome { cumulative_reward: 1.0, ..EpisodeOutcome::empty() }, 0.5);
///     adjuster.observe(episode, &trace, &mut epsilon);
/// }
/// assert!(adjuster.events().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationAdjuster {
    config: ExplorationAdjusterConfig,
    events: Vec<MitigationEvent>,
    permanent_detections: u32,
    cooldown_until: usize,
    was_steady: bool,
}

impl ExplorationAdjuster {
    /// Creates an adjuster with the given configuration.
    pub fn new(config: ExplorationAdjusterConfig) -> ExplorationAdjuster {
        ExplorationAdjuster {
            config,
            events: Vec::new(),
            permanent_detections: 0,
            cooldown_until: 0,
            was_steady: false,
        }
    }

    /// The paper's tabular-policy adjuster (`x = 25 %`, `y = 50`, `α = 0.8`).
    pub fn for_tabular() -> ExplorationAdjuster {
        ExplorationAdjuster::new(ExplorationAdjusterConfig::tabular())
    }

    /// The paper's NN-policy adjuster (`α = 0.4`).
    pub fn for_network() -> ExplorationAdjuster {
        ExplorationAdjuster::new(ExplorationAdjusterConfig::network())
    }

    /// The configuration in use.
    pub fn config(&self) -> ExplorationAdjusterConfig {
        self.config
    }

    /// Every mitigation action taken so far, in order.
    pub fn events(&self) -> &[MitigationEvent] {
        &self.events
    }

    /// Number of transient-fault detections.
    pub fn transient_detections(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, MitigationEvent::TransientDetected { .. }))
            .count()
    }

    /// Number of permanent-fault detections.
    pub fn permanent_detections(&self) -> usize {
        self.permanent_detections as usize
    }

    /// Episode observer: call at the end of every training episode (the
    /// signature matches the observer parameter of the `navft-rl` trainers).
    pub fn observe(
        &mut self,
        episode: usize,
        trace: &TrainingTrace,
        epsilon: &mut EpsilonSchedule,
    ) {
        let max_reward = f64::from(trace.max_reward());
        if !max_reward.is_finite() || max_reward <= 0.0 {
            // Nothing learned yet: no reference level to detect drops against.
            return;
        }
        let recent = trace.recent_mean_reward(self.config.smoothing_window);

        if episode >= self.cooldown_until {
            if let Some(drop) = self.transient_drop(trace, max_reward, recent) {
                let f_r = drop;
                let f_t = (episode as f64 / self.config.steady_episodes as f64).min(1.0);
                let boost = self.config.alpha * f_r.min(f_r * f_t);
                epsilon.boost(boost);
                self.events.push(MitigationEvent::TransientDetected {
                    episode,
                    reward_drop: f_r,
                    boost,
                });
                self.cooldown_until = episode + self.config.detection_window;
                self.was_steady = epsilon.is_steady();
                return;
            }
        }

        // Permanent-fault check: fires when the agent sits at steady
        // exploitation yet the reward stays below half of its best level.
        let steady = epsilon.is_steady();
        if steady
            && !self.was_steady
            && recent < self.config.permanent_reward_fraction * max_reward
            && episode >= self.cooldown_until
        {
            self.permanent_detections += 1;
            let slowdown = 2f64.powi(self.permanent_detections as i32);
            epsilon.reset_to_initial();
            epsilon.slow_decay(2.0);
            self.events.push(MitigationEvent::PermanentDetected { episode, slowdown });
            self.cooldown_until = episode + self.config.detection_window;
        }
        self.was_steady = steady;
    }

    /// Returns the normalised reward drop `f(r)` if a transient-style drop is
    /// present at the end of the trace, `None` otherwise.
    fn transient_drop(&self, trace: &TrainingTrace, max_reward: f64, recent: f64) -> Option<f64> {
        let y = self.config.detection_window;
        let w = self.config.smoothing_window.max(1);
        if trace.len() < y + w {
            return None;
        }
        // Mean reward over the smoothing window that ended y episodes ago.
        let end = trace.len() - y;
        let start = end.saturating_sub(w);
        let past: f64 = trace.rewards[start..end].iter().map(|&r| f64::from(r)).sum::<f64>()
            / (end - start) as f64;
        let drop = (past - recent) / max_reward;
        (drop > self.config.reward_drop_fraction).then_some(drop.min(1.0))
    }
}

impl Default for ExplorationAdjuster {
    fn default() -> Self {
        ExplorationAdjuster::for_tabular()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navft_rl::EpisodeOutcome;

    fn push(trace: &mut TrainingTrace, reward: f32, epsilon: f64) {
        trace
            .push(EpisodeOutcome { cumulative_reward: reward, ..EpisodeOutcome::empty() }, epsilon);
    }

    fn run_rewards(rewards: &[f32]) -> (ExplorationAdjuster, EpsilonSchedule) {
        let mut adjuster = ExplorationAdjuster::for_tabular();
        let mut epsilon = EpsilonSchedule::for_training(100);
        let mut trace = TrainingTrace::new();
        for (episode, &r) in rewards.iter().enumerate() {
            push(&mut trace, r, epsilon.epsilon());
            epsilon.advance_episode();
            adjuster.observe(episode, &trace, &mut epsilon);
        }
        (adjuster, epsilon)
    }

    #[test]
    fn healthy_training_triggers_nothing() {
        let rewards: Vec<f32> = (0..300).map(|i| (i as f32 / 100.0).min(1.0)).collect();
        let (adjuster, _) = run_rewards(&rewards);
        assert!(adjuster.events().is_empty());
        assert_eq!(adjuster.transient_detections(), 0);
        assert_eq!(adjuster.permanent_detections(), 0);
    }

    #[test]
    fn sudden_reward_drop_boosts_exploration() {
        // Good rewards for 200 episodes, then a crash to -1 (a transient fault
        // destroying the learned policy).
        let mut rewards = vec![1.0f32; 200];
        rewards.extend(vec![-1.0f32; 30]);
        let (adjuster, epsilon) = run_rewards(&rewards);
        assert!(adjuster.transient_detections() >= 1);
        let MitigationEvent::TransientDetected { reward_drop, boost, .. } = adjuster.events()[0]
        else {
            panic!("expected a transient detection first");
        };
        assert!(reward_drop > 0.25);
        assert!(boost > 0.0);
        // ε was boosted above the steady floor at least once; by the end it
        // may have decayed again, but the events record the action.
        assert!(epsilon.epsilon() >= epsilon.floor());
    }

    #[test]
    fn persistent_low_reward_at_steady_exploitation_is_a_permanent_fault() {
        // The agent reaches good reward briefly, then a permanent fault caps
        // the reward near zero long before ε reaches its floor.
        let mut rewards = vec![1.0f32; 10];
        rewards.extend(vec![0.05f32; 290]);
        let mut adjuster = ExplorationAdjuster::for_tabular();
        // Use a fast-decaying schedule so steady exploitation is reached
        // within the run.
        let mut epsilon = EpsilonSchedule::for_training(50);
        let mut trace = TrainingTrace::new();
        for (episode, &r) in rewards.iter().enumerate() {
            push(&mut trace, r, epsilon.epsilon());
            epsilon.advance_episode();
            adjuster.observe(episode, &trace, &mut epsilon);
        }
        assert!(adjuster.permanent_detections() >= 1, "events: {:?}", adjuster.events());
        // The decay must have been slowed at least once.
        assert!(epsilon.decay_slowdown() >= 2.0);
    }

    #[test]
    fn gradual_decline_does_not_trigger_transient_detection() {
        // A slow decline of 0.001 per episode never drops 25% within 50 episodes.
        let rewards: Vec<f32> = (0..400).map(|i| 1.0 - i as f32 * 0.001).collect();
        let (adjuster, _) = run_rewards(&rewards);
        assert_eq!(adjuster.transient_detections(), 0);
    }

    #[test]
    fn detections_respect_the_cooldown_window() {
        let mut rewards = vec![1.0f32; 100];
        rewards.extend(vec![-1.0f32; 60]);
        let (adjuster, _) = run_rewards(&rewards);
        // Without a cooldown every episode after the crash would fire; with a
        // 50-episode cooldown at most two detections fit in 60 episodes.
        assert!(adjuster.transient_detections() <= 2);
    }

    #[test]
    fn no_reference_reward_means_no_detection() {
        let rewards = vec![-1.0f32; 120];
        let (adjuster, _) = run_rewards(&rewards);
        assert!(adjuster.events().is_empty());
    }

    #[test]
    fn network_config_uses_smaller_alpha() {
        assert_eq!(ExplorationAdjuster::for_network().config().alpha, 0.4);
        assert_eq!(ExplorationAdjuster::for_tabular().config().alpha, 0.8);
        assert_eq!(ExplorationAdjuster::default().config(), ExplorationAdjusterConfig::tabular());
    }

    #[test]
    fn boost_magnitude_scales_with_fault_time() {
        // Identical drops, one early in training and one late: the late one
        // gets the full f(r) boost while the early one is scaled by f(t).
        let mut early = vec![1.0f32; 60];
        early.extend(vec![-1.0f32; 10]);
        let mut late = vec![1.0f32; 300];
        late.extend(vec![-1.0f32; 10]);
        let (adjuster_early, _) = run_rewards(&early);
        let (adjuster_late, _) = run_rewards(&late);
        let boost_of = |a: &ExplorationAdjuster| match a.events().first() {
            Some(MitigationEvent::TransientDetected { boost, .. }) => *boost,
            _ => panic!("expected a transient detection"),
        };
        assert!(boost_of(&adjuster_late) >= boost_of(&adjuster_early));
    }
}

//! Runtime-overhead measurement for the inference mitigation.
//!
//! The paper reports that range-based anomaly detection adds less than 3 %
//! runtime overhead and, unlike ECC, needs no redundant storage bits. This
//! module measures the relative cost of a guarded inference versus a plain
//! one on this implementation.

use std::time::Instant;

use navft_nn::{EngineConfig, Network, NoHooks, Scratch, Tensor};

use crate::RangeGuard;

/// The measured cost of running inference with and without the anomaly
/// detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Mean latency of an unprotected forward pass, in seconds.
    pub baseline_seconds: f64,
    /// Mean latency of a protected forward pass (scrub amortised over
    /// `scrub_interval` inferences), in seconds.
    pub protected_seconds: f64,
    /// Number of forward passes measured per variant.
    pub iterations: usize,
}

impl OverheadReport {
    /// The relative overhead, e.g. `0.03` for 3 %.
    pub fn relative_overhead(&self) -> f64 {
        if self.baseline_seconds <= 0.0 {
            return 0.0;
        }
        (self.protected_seconds - self.baseline_seconds) / self.baseline_seconds
    }
}

/// Measures the runtime overhead of the range guard on `network`.
///
/// The guard's scrub is amortised over `scrub_interval` inferences, matching a
/// deployment where weight memory is scanned periodically rather than before
/// every single frame.
///
/// # Panics
///
/// Panics if `iterations` or `scrub_interval` is zero.
pub fn measure_overhead(
    network: &Network,
    guard: &RangeGuard,
    input: &Tensor,
    iterations: usize,
    scrub_interval: usize,
) -> OverheadReport {
    assert!(iterations > 0, "iterations must be non-zero");
    assert!(scrub_interval > 0, "scrub interval must be non-zero");

    // Both variants run on the batched engine's zero-allocation scratch path,
    // so the measured difference is the mitigation, not allocator noise. Two
    // warm-up passes take slab growth out of the timed region (the slabs swap
    // roles per layer sweep, so both reach their high-water mark only on the
    // second pass when the sweep count is odd).
    // An explicit engine config keeps the measurement independent of the
    // deprecated process-wide kernel knobs.
    let engine = EngineConfig::default();
    let mut scratch = Scratch::new();
    std::hint::black_box(network.forward_scratch_cfg(input, &mut scratch, &mut NoHooks, engine));
    std::hint::black_box(network.forward_scratch_cfg(input, &mut scratch, &mut NoHooks, engine));

    // Baseline: plain forward passes.
    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(network.forward_scratch_cfg(
            std::hint::black_box(input),
            &mut scratch,
            &mut NoHooks,
            engine,
        ));
    }
    let baseline = start.elapsed().as_secs_f64() / iterations as f64;

    // Protected: periodic weight scrub plus the same forward passes.
    let mut protected_net = network.clone();
    let start = Instant::now();
    for i in 0..iterations {
        if i % scrub_interval == 0 {
            guard.scrub(&mut protected_net);
        }
        std::hint::black_box(protected_net.forward_scratch_cfg(
            std::hint::black_box(input),
            &mut scratch,
            &mut NoHooks,
            engine,
        ));
    }
    let protected = start.elapsed().as_secs_f64() / iterations as f64;

    OverheadReport { baseline_seconds: baseline, protected_seconds: protected, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RangeGuardConfig;
    use navft_nn::mlp;
    use navft_qformat::QFormat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn overhead_report_is_populated_and_small_for_amortised_scrubs() {
        let mut rng = SmallRng::seed_from_u64(0);
        let net = mlp(&[64, 64, 8], &mut rng);
        let guard = RangeGuard::from_network(&net, QFormat::Q4_11, RangeGuardConfig::paper());
        let input = Tensor::full(&[64], 0.3);
        // Enough iterations that timing noise and the two amortised scrubs
        // don't swamp the per-inference cost in an optimized build.
        let report = measure_overhead(&net, &guard, &input, 500, 250);
        assert_eq!(report.iterations, 500);
        assert!(report.baseline_seconds > 0.0);
        assert!(report.protected_seconds > 0.0);
        // Timing noise makes a hard bound flaky, but the overhead must not be
        // catastrophic (the paper reports < 3 %; we allow a generous slack in
        // a debug-build unit test).
        assert!(report.relative_overhead() < 2.0, "overhead {}", report.relative_overhead());
    }

    #[test]
    fn relative_overhead_handles_zero_baseline() {
        let report =
            OverheadReport { baseline_seconds: 0.0, protected_seconds: 1.0, iterations: 1 };
        assert_eq!(report.relative_overhead(), 0.0);
    }

    #[test]
    #[should_panic(expected = "iterations must be non-zero")]
    fn zero_iterations_are_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = mlp(&[4, 2], &mut rng);
        let guard = RangeGuard::from_network(&net, QFormat::Q4_11, RangeGuardConfig::paper());
        let _ = measure_overhead(&net, &guard, &Tensor::zeros(&[4]), 0, 1);
    }
}

//! Quickstart: train a Grid World policy, inject faults into its quantized
//! Q-table, and measure the impact on navigation success.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_gridworld::{GridWorld, ObstacleDensity};
use navft_qformat::QFormat;
use navft_rl::{
    evaluate_tabular, trainer, DiscreteEnvironment, FaultPlan, InferenceFaultMode, TabularAgent,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let density = ObstacleDensity::Middle;
    println!(
        "Grid World ({density} obstacle density):\n{}",
        GridWorld::with_density(density).render()
    );

    // 1. Train an 8-bit quantized tabular policy, fault-free.
    let mut world = GridWorld::with_density(density).with_exploring_starts(42);
    let mut agent = TabularAgent::for_grid_world(world.num_states(), world.num_actions());
    let mut rng = SmallRng::seed_from_u64(42);
    let trace = trainer::train_tabular(
        &mut world,
        &mut agent,
        trainer::TrainingConfig::new(1000, 100),
        &FaultPlan::none(),
        &mut rng,
        trainer::no_mitigation(),
    );
    println!(
        "trained for {} episodes; recent training success rate {:.1}%",
        trace.len(),
        trace.recent_success_rate(100) * 100.0
    );

    // 2. Evaluate the clean policy from the source cell.
    let mut eval_world = GridWorld::with_density(density);
    let clean = evaluate_tabular(
        &mut eval_world,
        &agent.table,
        500,
        100,
        &InferenceFaultMode::None,
        &mut rng,
    );
    println!("fault-free inference: {clean}");

    // 3. Inject transient bit flips into the Q-table memory at increasing
    //    bit error rates and watch the success rate fall. Greedy rollouts
    //    from the fixed start cell are deterministic, so each repetition
    //    samples a fresh fault map (the paper's campaign methodology) and the
    //    success rate is the fraction of maps the policy survives.
    println!("\nBER sweep (transient faults in the whole Q-table memory):");
    let repetitions = 200;
    for ber in [0.001, 0.002, 0.005, 0.01, 0.02] {
        let mut survived = 0usize;
        for _ in 0..repetitions {
            let injector = Injector::sample(
                FaultTarget::new(FaultSite::TabularBuffer),
                agent.table.len(),
                QFormat::Q3_4,
                ber,
                FaultKind::BitFlip,
                &mut rng,
            );
            let faulty = evaluate_tabular(
                &mut eval_world,
                &agent.table,
                1,
                100,
                &InferenceFaultMode::TransientWholeEpisode(injector),
                &mut rng,
            );
            if faulty.success_rate > 0.5 {
                survived += 1;
            }
        }
        let success = 100.0 * survived as f64 / repetitions as f64;
        println!(
            "  BER {:>6.2}% -> success {:>5.1}% over {repetitions} fault maps",
            ber * 100.0,
            success
        );
    }
}

//! Drone fault-characterization survey: where do faults hurt the most?
//!
//! Reproduces a small version of Fig. 7c/7d: it pre-trains the C3F2 policy on
//! the indoor-long environment, then sweeps fault locations (input, weights,
//! activations) and individual layers, reporting Mean Safe Flight.
//!
//! ```text
//! cargo run --release --example drone_survey
//! ```

use navft_core::drone_policy::train_drone_policy;
use navft_core::{BufferFaultHook, HookPersistence, HookTarget, Scale};
use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
use navft_fault::{BitFault, FaultKind, FaultMap, FaultSite, FaultTarget, Injector};
use navft_qformat::QFormat;
use navft_rl::{evaluate_network_vision, evaluate_network_vision_hooked, InferenceFaultMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let params = Scale::Quick.drone();
    let world = DroneWorld::indoor_long();
    println!("pre-training the C3F2 drone policy (behaviour cloning)...");
    let policy = train_drone_policy(&world, &params, 7);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);

    let clean = evaluate_network_vision(
        &mut sim,
        &policy,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::None,
        &mut rng,
    );
    println!("fault-free mean safe flight: {:.1} m\n", clean.mean_distance);

    let ber = 1e-3;
    println!("fault-location sweep at BER = {ber:.0e} (bit flips):");
    // Weights.
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::WeightBuffer),
        policy.weight_count(),
        QFormat::Q4_11,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let weights = evaluate_network_vision(
        &mut sim,
        &policy,
        params.eval_episodes,
        params.max_steps,
        &InferenceFaultMode::TransientWholeEpisode(injector),
        &mut rng,
    );
    println!("  {:<26} {:>7.1} m", "weight buffer", weights.mean_distance);
    // Input and activations, via forward hooks.
    for (label, target, persistence) in [
        ("input buffer", HookTarget::Input, HookPersistence::Transient),
        ("activations (transient)", HookTarget::Activations, HookPersistence::Transient),
        ("activations (permanent)", HookTarget::Activations, HookPersistence::Permanent),
    ] {
        let result = evaluate_network_vision_hooked(
            &mut sim,
            &policy,
            params.eval_episodes,
            params.max_steps,
            &InferenceFaultMode::None,
            &mut rng,
            |episode| {
                BufferFaultHook::new(
                    target,
                    persistence,
                    ber,
                    FaultKind::BitFlip,
                    QFormat::Q4_11,
                    episode as u64,
                )
            },
        );
        println!("  {:<26} {:>7.1} m", label, result.mean_distance);
    }

    println!("\nper-layer sensitivity at BER = 1e-2 (bit flips confined to one layer):");
    for (name, layer) in navft_nn::parametric_layer_names(&policy) {
        let span = policy.weight_span(layer);
        let local =
            FaultMap::sample(span.len(), QFormat::Q4_11, 1e-2, FaultKind::BitFlip, &mut rng);
        let shifted: FaultMap = local
            .faults()
            .iter()
            .map(|f| BitFault { word: f.word + span.start, bit: f.bit, kind: f.kind })
            .collect();
        let injector = Injector::new(
            FaultTarget::layer(FaultSite::WeightBuffer, layer),
            QFormat::Q4_11,
            shifted,
        );
        let result = evaluate_network_vision(
            &mut sim,
            &policy,
            params.eval_episodes,
            params.max_steps,
            &InferenceFaultMode::TransientWholeEpisode(injector),
            &mut rng,
        );
        println!("  {:<8} {:>7.1} m", name, result.mean_distance);
    }
}

//! Training-time fault characterization: inject a transient burst of bit
//! flips into the Q-table at a chosen episode, with and without the adaptive
//! exploration-rate mitigation, and compare the final policies.
//!
//! ```text
//! cargo run --release --example training_under_faults
//! ```

use navft_fault::{FaultKind, FaultSite, FaultTarget, InjectionSchedule, Injector};
use navft_gridworld::{GridWorld, ObstacleDensity};
use navft_mitigation::ExplorationAdjuster;
use navft_qformat::QFormat;
use navft_rl::{
    evaluate_tabular, trainer, DiscreteEnvironment, FaultPlan, InferenceFaultMode, TabularAgent,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn train(ber: f64, injection_episode: usize, mitigated: bool, seed: u64) -> f64 {
    let density = ObstacleDensity::Middle;
    let mut world = GridWorld::with_density(density).with_exploring_starts(seed);
    let mut agent = TabularAgent::for_grid_world(world.num_states(), world.num_actions());
    let mut rng = SmallRng::seed_from_u64(seed);
    let injector = Injector::sample(
        FaultTarget::new(FaultSite::TabularBuffer),
        agent.table.len(),
        QFormat::Q3_4,
        ber,
        FaultKind::BitFlip,
        &mut rng,
    );
    let plan = FaultPlan::new(injector, InjectionSchedule::at_episode(injection_episode));
    let mut adjuster = ExplorationAdjuster::for_tabular();
    if mitigated {
        trainer::train_tabular(
            &mut world,
            &mut agent,
            trainer::TrainingConfig::new(1000, 100),
            &plan,
            &mut rng,
            |episode, trace, epsilon| adjuster.observe(episode, trace, epsilon),
        );
    } else {
        trainer::train_tabular(
            &mut world,
            &mut agent,
            trainer::TrainingConfig::new(1000, 100),
            &plan,
            &mut rng,
            trainer::no_mitigation(),
        );
    }
    let mut eval_world = GridWorld::with_density(density);
    evaluate_tabular(&mut eval_world, &agent.table, 300, 100, &InferenceFaultMode::None, &mut rng)
        .success_rate
        * 100.0
}

fn main() {
    println!("Transient faults injected late in training (episode 900 of 1000):\n");
    println!("{:>8} {:>16} {:>16}", "BER", "no mitigation", "ER adjustment");
    for ber in [0.002, 0.005, 0.01] {
        let mut plain = 0.0;
        let mut guarded = 0.0;
        let reps = 3;
        for seed in 0..reps {
            plain += train(ber, 900, false, seed);
            guarded += train(ber, 900, true, seed);
        }
        println!(
            "{:>7.1}% {:>15.1}% {:>15.1}%",
            ber * 100.0,
            plain / reps as f64,
            guarded / reps as f64
        );
    }
}

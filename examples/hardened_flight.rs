//! Hardened flight: protect the drone policy with range-based anomaly
//! detection and compare flight quality against the unprotected policy under
//! increasing weight bit-error rates (a small version of Fig. 10b).
//!
//! ```text
//! cargo run --release --example hardened_flight
//! ```

use navft_core::drone_policy::train_drone_policy;
use navft_core::Scale;
use navft_dronesim::{DepthCamera, DroneSim, DroneWorld};
use navft_fault::{FaultKind, FaultSite, FaultTarget, Injector};
use navft_mitigation::{measure_overhead, RangeGuard, RangeGuardConfig};
use navft_nn::Tensor;
use navft_qformat::QFormat;
use navft_rl::{corrupt_network_weights, evaluate_network_vision, InferenceFaultMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let params = Scale::Quick.drone();
    let world = DroneWorld::indoor_long();
    println!("pre-training the C3F2 drone policy (behaviour cloning)...");
    let policy = train_drone_policy(&world, &params, 11);
    let guard = RangeGuard::from_network(&policy, QFormat::Q4_11, RangeGuardConfig::paper());
    let mut rng = SmallRng::seed_from_u64(11);

    println!("\n{:>8} {:>16} {:>16}", "BER", "unprotected (m)", "protected (m)");
    for &ber in &params.bit_error_rates {
        let mut unprotected = 0.0;
        let mut protected = 0.0;
        let reps = 3;
        for rep in 0..reps {
            let injector = Injector::sample(
                FaultTarget::new(FaultSite::WeightBuffer),
                policy.weight_count(),
                QFormat::Q4_11,
                ber,
                FaultKind::BitFlip,
                &mut SmallRng::seed_from_u64(100 + rep),
            );
            let corrupted = corrupt_network_weights(
                &policy,
                &InferenceFaultMode::TransientWholeEpisode(injector),
            );
            let mut scrubbed = corrupted.clone();
            guard.scrub(&mut scrubbed);
            let mut sim = DroneSim::new(world.clone(), DepthCamera::scaled(), params.max_steps);
            unprotected += evaluate_network_vision(
                &mut sim,
                &corrupted,
                params.eval_episodes,
                params.max_steps,
                &InferenceFaultMode::None,
                &mut rng,
            )
            .mean_distance;
            protected += evaluate_network_vision(
                &mut sim,
                &scrubbed,
                params.eval_episodes,
                params.max_steps,
                &InferenceFaultMode::None,
                &mut rng,
            )
            .mean_distance;
        }
        println!(
            "{:>8.0e} {:>16.1} {:>16.1}",
            ber,
            unprotected / reps as f64,
            protected / reps as f64
        );
    }

    let frame = Tensor::zeros(&DepthCamera::scaled().frame_shape());
    let overhead = measure_overhead(&policy, &guard, &frame, 50, 25);
    println!(
        "\nrange-guard runtime overhead (scrub amortised over 25 inferences): {:.2}%",
        overhead.relative_overhead() * 100.0
    );
}

//! Minimal, dependency-free stand-in for the parts of the `rand` 0.8 API that
//! the navft workspace uses. The container image has no access to crates.io,
//! so the workspace vendors this crate and wires it in as a path dependency.
//!
//! Provided surface:
//!
//! * [`RngCore`], [`Rng`] (with `gen_range` over int/float ranges and
//!   `gen_bool`), [`SeedableRng`] (with `seed_from_u64`).
//! * [`rngs::SmallRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64, matching the real crate's algorithm choice on 64-bit
//!   platforms.
//! * [`seq::index::sample`] — uniform sampling of distinct indices without
//!   replacement (Floyd's algorithm).
//!
//! The implementation is deliberately small and fully deterministic: the same
//! seed always yields the same stream on every platform.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a float uniform in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a float uniform in `[0, 1)` with f32 precision.
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Uniform-distribution plumbing behind [`Rng::gen_range`].
pub mod distributions {
    /// Range abstraction used by `gen_range`.
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample from the range using `rng`.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_range_impls {
            ($($ty:ty),*) => {$(
                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let offset = (rng.next_u64() as u128 % span) as i128;
                        (self.start as i128 + offset) as $ty
                    }
                }
                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "gen_range: empty range");
                        let span = (end as i128 - start as i128) as u128 + 1;
                        let offset = (rng.next_u64() as u128 % span) as i128;
                        (start as i128 + offset) as $ty
                    }
                }
            )*};
        }

        int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range_impls {
            ($($ty:ty => $unit:path),*) => {$(
                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let f = $unit(rng.next_u64());
                        self.start + f * (self.end - self.start)
                    }
                }
                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "gen_range: empty range");
                        let f = $unit(rng.next_u64());
                        start + f * (end - start)
                    }
                }
            )*};
        }

        float_range_impls!(f32 => crate::unit_f32, f64 => crate::unit_f64);
    }
}

/// Concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the algorithm the real
    /// `rand::rngs::SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> SmallRng {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Sampling of distinct indices.
    pub mod index {
        use crate::{Rng, RngCore};
        use std::collections::HashSet;

        /// A set of distinct indices in `0..length`, in sample order.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes the set, returning the plain index vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, usize>> {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// without replacement (Floyd's algorithm).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "sample: amount ({amount}) must not exceed length ({length})"
            );
            let mut chosen = HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for j in (length - amount)..length {
                let t = rng.gen_range(0..=j);
                if chosen.insert(t) {
                    out.push(t);
                } else {
                    chosen.insert(j);
                    out.push(j);
                }
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::index::sample;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-128i32..=127);
            assert!((-128..=127).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn sample_is_distinct_and_exact() {
        let mut rng = SmallRng::seed_from_u64(11);
        for amount in [0usize, 1, 10, 100] {
            let idx = sample(&mut rng, 100, amount);
            assert_eq!(idx.len(), amount);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), amount);
            assert!(idx.into_iter().all(|i| i < 100));
        }
    }

    #[test]
    fn sample_full_range_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut idx = sample(&mut rng, 64, 64).into_vec();
        idx.sort_unstable();
        assert_eq!(idx, (0..64).collect::<Vec<_>>());
    }
}

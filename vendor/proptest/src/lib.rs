//! Minimal, deterministic stand-in for the parts of the `proptest` API that
//! the navft workspace uses. The container image has no access to crates.io,
//! so the workspace vendors this crate and wires it in as a path dependency.
//!
//! Provided surface:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter` combinators.
//! * Strategies for half-open and inclusive numeric ranges and for tuples of
//!   strategies (arity 2–4).
//! * The [`proptest!`] macro (deterministically seeded; case count
//!   overridable via the `PROPTEST_CASES` environment variable) and the
//!   `prop_assert!` family.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the generated inputs via the normal assertion message.

#![forbid(unsafe_code)]

pub use rand;

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::SmallRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    ///
    /// `generate` returns `None` when the candidate was rejected (e.g. by
    /// [`Strategy::prop_filter`]); the runner retries with fresh randomness.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Generates one candidate value, or `None` if rejected.
        fn generate(&self, rng: &mut SmallRng) -> Option<Self::Value>;

        /// Transforms generated values with `map_fn`.
        fn prop_map<U, F>(self, map_fn: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map_fn }
        }

        /// Rejects generated values for which `pred` is false.
        ///
        /// `whence` labels the filter in the too-many-rejects panic message.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, pred }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map_fn: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut SmallRng) -> Option<U> {
            self.inner.generate(rng).map(&self.map_fn)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        #[allow(dead_code)]
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.pred)(v))
        }
    }

    /// Strategy that always yields a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    macro_rules! range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut SmallRng) -> Option<$ty> {
                    Some(rand::Rng::gen_range(rng, self.clone()))
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut SmallRng) -> Option<$ty> {
                    Some(rand::Rng::gen_range(rng, self.clone()))
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Option<Self::Value> {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

/// Deterministic test-case runner used by the [`proptest!`] macro.
pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Default number of cases per property (the real crate defaults to 256).
    pub const DEFAULT_CASES: u32 = 256;

    /// Maximum rejected candidates per case before giving up.
    pub const MAX_REJECTS: u32 = 1_000;

    /// Drives a property through its cases with a deterministic RNG.
    pub struct TestRunner {
        rng: SmallRng,
        cases: u32,
    }

    impl Default for TestRunner {
        fn default() -> TestRunner {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CASES);
            // Fixed seed: the suite must be reproducible run-to-run.
            TestRunner { rng: SmallRng::seed_from_u64(0x6e61_7666_7470_7231), cases }
        }
    }

    impl TestRunner {
        /// Number of cases this runner will execute.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Generates one value from `strategy`, retrying on rejection.
        ///
        /// # Panics
        ///
        /// Panics if the strategy rejects [`MAX_REJECTS`] candidates in a row.
        pub fn draw<S: Strategy>(&mut self, strategy: &S) -> S::Value {
            for _ in 0..MAX_REJECTS {
                if let Some(value) = strategy.generate(&mut self.rng) {
                    return value;
                }
            }
            panic!("proptest: strategy rejected {MAX_REJECTS} candidates in a row");
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRunner;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::default();
            for _case in 0..runner.cases() {
                $(let $arg = runner.draw(&{ $strategy });)*
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property, like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_filter("even only", |v| v % 2 == 0)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f32..=2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u8..=15, 0u8..=15).prop_map(|(a, b)| a as u16 + b as u16)) {
            prop_assert!(pair <= 30);
        }

        #[test]
        fn filter_rejects(even in arb_even()) {
            prop_assert_eq!(even % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let strat = 0u64..u64::MAX;
        let mut a = TestRunner::default();
        let mut b = TestRunner::default();
        for _ in 0..32 {
            assert_eq!(a.draw(&strat), b.draw(&strat));
        }
    }
}

//! Minimal, dependency-free stand-in for the parts of the `criterion` API
//! that the navft workspace uses. The container image has no access to
//! crates.io, so the workspace vendors this crate and wires it in as a path
//! dependency.
//!
//! Provided surface: [`Criterion`] with `bench_function` /
//! `benchmark_group`, [`BenchmarkGroup`] with `sample_size` and `finish`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock timing: each benchmark is warmed up
//! briefly, then timed over `sample_size` samples, and the per-iteration
//! median/min/max are printed. There are no plots, no statistics beyond
//! that, and no baseline storage — enough to spot gross regressions and to
//! keep `cargo bench` working offline. A `--quick` or `--test` CLI argument
//! (as passed by `cargo test --benches`) reduces each benchmark to a single
//! iteration so suites stay fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point for registering benchmarks.
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Criterion { sample_size: 30, quick }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, self.quick, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: None }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_benchmark(&full, samples, self.parent.quick, f);
        self
    }

    /// Finishes the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, quick: bool, mut f: F) {
    if quick {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("{id:<60} ok (quick)");
        return;
    }

    // Warm-up: find an iteration count that takes roughly 10ms per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));

    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{id:<60} median {:>12} (min {}, max {}, {samples} samples x {iters} iters)",
        format_time(median),
        format_time(min),
        format_time(max),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion { sample_size: 2, quick: true };
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_inherits_and_overrides_sample_size() {
        let mut c = Criterion { sample_size: 2, quick: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
